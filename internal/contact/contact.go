// Package contact models a delay tolerant network as a contact graph
// (Sec. III-A of the paper): n nodes, and for each pair (v_i, v_j) an
// exponential inter-contact process with rate lambda_{i,j}. The package
// also computes the group-aggregated per-hop rates lambda_k of Eq. 4
// that drive the opportunistic onion path model.
package contact

import (
	"fmt"

	"repro/internal/rng"
)

// NodeID identifies a node in the contact graph, in [0, N).
type NodeID int

// Graph is a symmetric contact-rate matrix over n nodes. The rate of
// the (i, j) pair is the inverse of the mean inter-contact time; a rate
// of zero means the pair never meets.
type Graph struct {
	n     int
	rates []float64 // row-major n x n, symmetric, zero diagonal
}

// NewGraph returns a graph with n nodes and no contacts. It panics if
// n <= 0.
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic("contact: graph needs at least one node")
	}
	return &Graph{n: n, rates: make([]float64, n*n)}
}

// NewRandom generates the paper's random contact graph: every pair of
// distinct nodes meets, with mean inter-contact time drawn uniformly
// from [minICT, maxICT) (Table II uses 1 to 360 minutes). It panics on
// invalid bounds.
func NewRandom(n int, minICT, maxICT float64, s *rng.Stream) *Graph {
	if minICT <= 0 || maxICT <= minICT {
		panic(fmt.Sprintf("contact: invalid ICT bounds [%v, %v)", minICT, maxICT))
	}
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ict := s.Uniform(minICT, maxICT)
			g.SetRate(NodeID(i), NodeID(j), 1/ict)
		}
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// Rate returns lambda_{i,j}. The diagonal is always zero.
func (g *Graph) Rate(i, j NodeID) float64 {
	g.check(i)
	g.check(j)
	return g.rates[int(i)*g.n+int(j)]
}

// SetRate sets lambda_{i,j} = lambda_{j,i} = r. It panics on negative
// rates, out-of-range nodes, or i == j with r != 0.
func (g *Graph) SetRate(i, j NodeID, r float64) {
	g.check(i)
	g.check(j)
	if r < 0 {
		panic("contact: negative rate")
	}
	if i == j {
		if r != 0 {
			panic("contact: self-contact rate must be zero")
		}
		return
	}
	g.rates[int(i)*g.n+int(j)] = r
	g.rates[int(j)*g.n+int(i)] = r
}

// MeanICT returns the mean inter-contact time 1/lambda_{i,j}, or +Inf
// semantics via ok=false when the pair never meets.
func (g *Graph) MeanICT(i, j NodeID) (float64, bool) {
	r := g.Rate(i, j)
	if r == 0 {
		return 0, false
	}
	return 1 / r, true
}

// Pairs invokes fn for every unordered pair with a positive rate.
func (g *Graph) Pairs(fn func(i, j NodeID, rate float64)) {
	for i := 0; i < g.n; i++ {
		for j := i + 1; j < g.n; j++ {
			if r := g.rates[i*g.n+j]; r > 0 {
				fn(NodeID(i), NodeID(j), r)
			}
		}
	}
}

// Degree returns the number of peers node i ever meets.
func (g *Graph) Degree(i NodeID) int {
	g.check(i)
	d := 0
	for j := 0; j < g.n; j++ {
		if g.rates[int(i)*g.n+j] > 0 {
			d++
		}
	}
	return d
}

// TotalRate returns the sum of rates from node i to every node in set,
// skipping i itself: the aggregate contact rate toward a candidate
// onion group (the building block of Eq. 4).
func (g *Graph) TotalRate(i NodeID, set []NodeID) float64 {
	g.check(i)
	sum := 0.0
	for _, j := range set {
		if j == i {
			continue
		}
		sum += g.Rate(i, j)
	}
	return sum
}

func (g *Graph) check(i NodeID) {
	if i < 0 || int(i) >= g.n {
		panic(fmt.Sprintf("contact: node %d out of range [0, %d)", i, g.n))
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := NewGraph(g.n)
	copy(out.rates, g.rates)
	return out
}

// Validate checks structural invariants (symmetry, zero diagonal,
// non-negative rates) and returns the first violation found.
func (g *Graph) Validate() error {
	for i := 0; i < g.n; i++ {
		if g.rates[i*g.n+i] != 0 {
			return fmt.Errorf("contact: non-zero self rate at node %d", i)
		}
		for j := i + 1; j < g.n; j++ {
			a, b := g.rates[i*g.n+j], g.rates[j*g.n+i]
			if a != b {
				return fmt.Errorf("contact: asymmetric rate (%d,%d): %v vs %v", i, j, a, b)
			}
			if a < 0 {
				return fmt.Errorf("contact: negative rate (%d,%d): %v", i, j, a)
			}
		}
	}
	return nil
}

// GroupPathRates computes the per-hop aggregate rates lambda_k of
// Eq. 4 for the opportunistic onion path
//
//	src -> R_1 -> R_2 -> ... -> R_K -> dst:
//
//	lambda_1     = sum_j lambda_{src, r_{1,j}}
//	lambda_k     = (1/|R_{k-1}|) sum_i sum_j lambda_{r_{k-1,i}, r_{k,j}}   (2 <= k <= K)
//	lambda_{K+1} = sum_j lambda_{r_{K,j}, dst}
//
// The returned slice has length K+1 (the hop count eta). An error is
// returned if any hop has zero aggregate rate, i.e. the onion path can
// never complete.
func GroupPathRates(g *Graph, src, dst NodeID, groups [][]NodeID) ([]float64, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("contact: onion path requires at least one group")
	}
	eta := len(groups) + 1
	rates := make([]float64, 0, eta)

	first := g.TotalRate(src, groups[0])
	rates = append(rates, first)

	for k := 1; k < len(groups); k++ {
		prev, next := groups[k-1], groups[k]
		if len(prev) == 0 {
			return nil, fmt.Errorf("contact: empty onion group at hop %d", k)
		}
		sum := 0.0
		for _, i := range prev {
			sum += g.TotalRate(i, next)
		}
		rates = append(rates, sum/float64(len(prev)))
	}

	last := 0.0
	for _, j := range groups[len(groups)-1] {
		if j == dst {
			continue
		}
		last += g.Rate(j, dst)
	}
	rates = append(rates, last)

	for k, r := range rates {
		if r <= 0 {
			return nil, fmt.Errorf("contact: hop %d of the onion path has zero aggregate rate", k+1)
		}
	}
	return rates, nil
}

// MeanRate returns the average positive pair rate of the graph, a
// density summary used when calibrating synthetic traces.
func (g *Graph) MeanRate() float64 {
	sum, cnt := 0.0, 0
	g.Pairs(func(_, _ NodeID, r float64) {
		sum += r
		cnt++
	})
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}
