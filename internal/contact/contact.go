// Package contact models a delay tolerant network as a contact graph
// (Sec. III-A of the paper): n nodes, and for each pair (v_i, v_j) an
// exponential inter-contact process with rate lambda_{i,j}. The package
// also computes the group-aggregated per-hop rates lambda_k of Eq. 4
// that drive the opportunistic onion path model.
//
// Two storage backends realize the same Graph semantics:
//
//   - dense: a row-major n x n float64 matrix, used up to
//     DefaultDenseNodeLimit nodes (the paper's 12-100-node scale);
//   - sparse: per-node neighbor lists sorted by peer ID (CSR-style),
//     used above the limit so city-scale populations (10^4-10^6 nodes)
//     never materialize an O(N^2) matrix.
//
// The backend is an internal detail: every accessor (Rate, Pairs,
// TotalRate, GroupPathRates, ...) performs identical floating-point
// operations in identical order on both, so results are bit-identical
// (enforced by the sparse/dense differential suite).
package contact

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/rng"
)

// NodeID identifies a node in the contact graph, in [0, N).
type NodeID int

const (
	// DefaultDenseNodeLimit is the population size above which a new
	// graph uses the sparse adjacency backend instead of the dense
	// n x n matrix. At the limit the dense matrix is 8 MB; one step
	// beyond in the dense world would grow quadratically.
	DefaultDenseNodeLimit = 1024

	// MaxNodes bounds graph populations. Even the sparse backend
	// allocates one neighbor-list header per node, so an absurd node
	// count (e.g. from a corrupt graph file header) must be rejected
	// before allocation, not OOM-killed after.
	MaxNodes = 1 << 24
)

// denseNodeLimit is the active switchover threshold. Atomic so the
// test hook can flip it while worker pools are running elsewhere.
var denseNodeLimit atomic.Int64

func init() { denseNodeLimit.Store(DefaultDenseNodeLimit) }

// SetDenseNodeLimit overrides the dense/sparse switchover threshold
// and returns a function restoring the previous value. A limit of 0
// forces every new graph onto the sparse backend. This is a test hook
// for the sparse/dense equivalence suites; production code should
// leave the default in place.
func SetDenseNodeLimit(n int) (restore func()) {
	prev := denseNodeLimit.Swap(int64(n))
	return func() { denseNodeLimit.Store(prev) }
}

// edge is one sparse adjacency entry: the peer and the pair rate.
type edge struct {
	to   NodeID
	rate float64
}

// Graph is a symmetric contact-rate structure over n nodes. The rate
// of the (i, j) pair is the inverse of the mean inter-contact time; a
// rate of zero means the pair never meets. Exactly one of dense/adj is
// non-nil.
type Graph struct {
	n     int
	dense []float64 // row-major n x n, symmetric, zero diagonal
	adj   [][]edge  // per-node neighbor lists, sorted ascending by to
}

// New returns a graph with n nodes and no contacts, choosing the
// storage backend by population size. It returns an error for
// non-positive n or n beyond MaxNodes — large n must not silently
// overflow the dense n*n allocation or exhaust memory.
func New(n int) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("contact: graph needs at least one node, got %d", n)
	}
	if n > MaxNodes {
		return nil, fmt.Errorf("contact: %d nodes exceeds the supported maximum %d", n, MaxNodes)
	}
	g := &Graph{n: n}
	if int64(n) <= denseNodeLimit.Load() {
		g.dense = make([]float64, n*n)
	} else {
		g.adj = make([][]edge, n)
	}
	return g, nil
}

// NewGraph returns a graph with n nodes and no contacts. It panics on
// invalid n; use New to handle untrusted node counts gracefully.
func NewGraph(n int) *Graph {
	g, err := New(n)
	if err != nil {
		panic(err.Error())
	}
	return g
}

// NewRandom generates the paper's random contact graph: every pair of
// distinct nodes meets, with mean inter-contact time drawn uniformly
// from [minICT, maxICT) (Table II uses 1 to 360 minutes). It panics on
// invalid bounds.
func NewRandom(n int, minICT, maxICT float64, s *rng.Stream) *Graph {
	if minICT <= 0 || maxICT <= minICT {
		panic(fmt.Sprintf("contact: invalid ICT bounds [%v, %v)", minICT, maxICT))
	}
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ict := s.Uniform(minICT, maxICT)
			g.SetRate(NodeID(i), NodeID(j), 1/ict)
		}
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// Sparse reports whether the graph uses the sparse adjacency backend.
func (g *Graph) Sparse() bool { return g.adj != nil }

// findEdge binary-searches a sorted neighbor list for peer j and
// returns its index and whether it is present.
func findEdge(es []edge, j NodeID) (int, bool) {
	pos := sort.Search(len(es), func(k int) bool { return es[k].to >= j })
	return pos, pos < len(es) && es[pos].to == j
}

// Rate returns lambda_{i,j}. The diagonal is always zero.
func (g *Graph) Rate(i, j NodeID) float64 {
	g.check(i)
	g.check(j)
	if g.dense != nil {
		return g.dense[int(i)*g.n+int(j)]
	}
	if pos, ok := findEdge(g.adj[i], j); ok {
		return g.adj[i][pos].rate
	}
	return 0
}

// SetRate sets lambda_{i,j} = lambda_{j,i} = r. It panics on negative
// rates, out-of-range nodes, or i == j with r != 0. Setting a rate to
// zero removes the pair.
func (g *Graph) SetRate(i, j NodeID, r float64) {
	g.check(i)
	g.check(j)
	if r < 0 {
		panic("contact: negative rate")
	}
	if i == j {
		if r != 0 {
			panic("contact: self-contact rate must be zero")
		}
		return
	}
	if g.dense != nil {
		g.dense[int(i)*g.n+int(j)] = r
		g.dense[int(j)*g.n+int(i)] = r
		return
	}
	g.setSparse(i, j, r)
	g.setSparse(j, i, r)
}

// setSparse updates the directed entry i -> j in the sorted neighbor
// list, inserting, overwriting or removing as needed.
func (g *Graph) setSparse(i, j NodeID, r float64) {
	es := g.adj[i]
	pos, ok := findEdge(es, j)
	switch {
	case ok && r == 0:
		g.adj[i] = append(es[:pos], es[pos+1:]...)
	case ok:
		es[pos].rate = r
	case r > 0:
		es = append(es, edge{})
		copy(es[pos+1:], es[pos:])
		es[pos] = edge{to: j, rate: r}
		g.adj[i] = es
	}
}

// MeanICT returns the mean inter-contact time 1/lambda_{i,j}, or +Inf
// semantics via ok=false when the pair never meets.
func (g *Graph) MeanICT(i, j NodeID) (float64, bool) {
	r := g.Rate(i, j)
	if r == 0 {
		return 0, false
	}
	return 1 / r, true
}

// Pairs invokes fn for every unordered pair with a positive rate, in
// (i, j) lexicographic order on both backends.
func (g *Graph) Pairs(fn func(i, j NodeID, rate float64)) {
	if g.dense != nil {
		for i := 0; i < g.n; i++ {
			for j := i + 1; j < g.n; j++ {
				if r := g.dense[i*g.n+j]; r > 0 {
					fn(NodeID(i), NodeID(j), r)
				}
			}
		}
		return
	}
	for i := 0; i < g.n; i++ {
		for _, e := range g.adj[i] {
			if e.to > NodeID(i) && e.rate > 0 {
				fn(NodeID(i), e.to, e.rate)
			}
		}
	}
}

// Degree returns the number of peers node i ever meets.
func (g *Graph) Degree(i NodeID) int {
	g.check(i)
	if g.dense != nil {
		d := 0
		for j := 0; j < g.n; j++ {
			if g.dense[int(i)*g.n+j] > 0 {
				d++
			}
		}
		return d
	}
	d := 0
	for _, e := range g.adj[i] {
		if e.rate > 0 {
			d++
		}
	}
	return d
}

// TotalRate returns the sum of rates from node i to every node in set,
// skipping i itself: the aggregate contact rate toward a candidate
// onion group (the building block of Eq. 4). Summation follows set
// order, so both backends accumulate bit-identically.
func (g *Graph) TotalRate(i NodeID, set []NodeID) float64 {
	g.check(i)
	sum := 0.0
	for _, j := range set {
		if j == i {
			continue
		}
		sum += g.Rate(i, j)
	}
	return sum
}

func (g *Graph) check(i NodeID) {
	if i < 0 || int(i) >= g.n {
		panic(fmt.Sprintf("contact: node %d out of range [0, %d)", i, g.n))
	}
}

// Clone returns a deep copy of the graph on the same backend.
func (g *Graph) Clone() *Graph {
	out := &Graph{n: g.n}
	if g.dense != nil {
		out.dense = make([]float64, len(g.dense))
		copy(out.dense, g.dense)
		return out
	}
	out.adj = make([][]edge, g.n)
	for i, es := range g.adj {
		if len(es) == 0 {
			continue
		}
		out.adj[i] = append([]edge(nil), es...)
	}
	return out
}

// Validate checks structural invariants (symmetry, zero diagonal,
// non-negative rates, sorted duplicate-free adjacency) and returns the
// first violation found.
func (g *Graph) Validate() error {
	if g.dense != nil {
		for i := 0; i < g.n; i++ {
			if g.dense[i*g.n+i] != 0 {
				return fmt.Errorf("contact: non-zero self rate at node %d", i)
			}
			for j := i + 1; j < g.n; j++ {
				a, b := g.dense[i*g.n+j], g.dense[j*g.n+i]
				if a != b {
					return fmt.Errorf("contact: asymmetric rate (%d,%d): %v vs %v", i, j, a, b)
				}
				if a < 0 {
					return fmt.Errorf("contact: negative rate (%d,%d): %v", i, j, a)
				}
			}
		}
		return nil
	}
	for i, es := range g.adj {
		prev := NodeID(-1)
		for _, e := range es {
			if e.to <= prev {
				return fmt.Errorf("contact: unsorted or duplicate adjacency at node %d", i)
			}
			prev = e.to
			if e.to < 0 || int(e.to) >= g.n {
				return fmt.Errorf("contact: node %d lists out-of-range peer %d", i, e.to)
			}
			if int(e.to) == i {
				return fmt.Errorf("contact: non-zero self rate at node %d", i)
			}
			if e.rate < 0 {
				return fmt.Errorf("contact: negative rate (%d,%d): %v", i, e.to, e.rate)
			}
			pos, ok := findEdge(g.adj[e.to], NodeID(i))
			if !ok || g.adj[e.to][pos].rate != e.rate {
				return fmt.Errorf("contact: asymmetric rate (%d,%d)", i, e.to)
			}
		}
	}
	return nil
}

// GroupPathRates computes the per-hop aggregate rates lambda_k of
// Eq. 4 for the opportunistic onion path
//
//	src -> R_1 -> R_2 -> ... -> R_K -> dst:
//
//	lambda_1     = sum_j lambda_{src, r_{1,j}}
//	lambda_k     = (1/|R_{k-1}|) sum_i sum_j lambda_{r_{k-1,i}, r_{k,j}}   (2 <= k <= K)
//	lambda_{K+1} = sum_j lambda_{r_{K,j}, dst}
//
// The returned slice has length K+1 (the hop count eta). An error is
// returned if any hop has zero aggregate rate, i.e. the onion path can
// never complete.
func GroupPathRates(g *Graph, src, dst NodeID, groups [][]NodeID) ([]float64, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("contact: onion path requires at least one group")
	}
	eta := len(groups) + 1
	rates := make([]float64, 0, eta)

	first := g.TotalRate(src, groups[0])
	rates = append(rates, first)

	for k := 1; k < len(groups); k++ {
		prev, next := groups[k-1], groups[k]
		if len(prev) == 0 {
			return nil, fmt.Errorf("contact: empty onion group at hop %d", k)
		}
		sum := 0.0
		for _, i := range prev {
			sum += g.TotalRate(i, next)
		}
		rates = append(rates, sum/float64(len(prev)))
	}

	last := 0.0
	for _, j := range groups[len(groups)-1] {
		if j == dst {
			continue
		}
		last += g.Rate(j, dst)
	}
	rates = append(rates, last)

	for k, r := range rates {
		if r <= 0 {
			return nil, fmt.Errorf("contact: hop %d of the onion path has zero aggregate rate", k+1)
		}
	}
	return rates, nil
}

// MeanRate returns the average positive pair rate of the graph, a
// density summary used when calibrating synthetic traces.
func (g *Graph) MeanRate() float64 {
	sum, cnt := 0.0, 0
	g.Pairs(func(_, _ NodeID, r float64) {
		sum += r
		cnt++
	})
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// toSparse returns a copy of g on the sparse backend (test support for
// the differential suites; a no-op copy if already sparse).
func (g *Graph) toSparse() *Graph {
	out := &Graph{n: g.n, adj: make([][]edge, g.n)}
	g.Pairs(func(i, j NodeID, r float64) {
		out.setSparse(i, j, r)
		out.setSparse(j, i, r)
	})
	return out
}

// toDense returns a copy of g on the dense backend (test support; the
// caller is responsible for keeping n small enough to materialize).
func (g *Graph) toDense() *Graph {
	out := &Graph{n: g.n, dense: make([]float64, g.n*g.n)}
	g.Pairs(func(i, j NodeID, r float64) {
		out.dense[int(i)*g.n+int(j)] = r
		out.dense[int(j)*g.n+int(i)] = r
	})
	return out
}
