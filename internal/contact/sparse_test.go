package contact

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/rng"
)

// The sparse/dense differential suite: the dense matrix is the
// reference implementation, and every accessor must be bit-identical on
// the sparse adjacency backend — not statistically close, identical —
// because figure artifacts are byte-compared across backends in CI.

func TestNewBackendSelection(t *testing.T) {
	small, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	if small.Sparse() {
		t.Error("16-node graph should use the dense backend")
	}
	big, err := New(DefaultDenseNodeLimit + 1)
	if err != nil {
		t.Fatal(err)
	}
	if !big.Sparse() {
		t.Errorf("%d-node graph should use the sparse backend", DefaultDenseNodeLimit+1)
	}
	restore := SetDenseNodeLimit(0)
	defer restore()
	forced, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if !forced.Sparse() {
		t.Error("SetDenseNodeLimit(0) should force the sparse backend")
	}
}

func TestNewRejectsBadNodeCounts(t *testing.T) {
	for _, n := range []int{0, -1, -1 << 40, MaxNodes + 1, 1 << 40} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d): want error, got nil", n)
		}
	}
	if _, err := New(MaxNodes); err != nil {
		t.Errorf("New(MaxNodes): %v", err)
	}
}

func TestNewGraphPanicsBeyondMaxNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGraph(MaxNodes+1) should panic")
		}
	}()
	NewGraph(MaxNodes + 1)
}

// randGroups carves random disjoint onion groups out of [0, n),
// avoiding src=0 and dst=1.
func randGroups(s *rng.Stream, n, k, size int) [][]NodeID {
	perm := s.Perm(n - 2)
	groups := make([][]NodeID, k)
	idx := 0
	for gi := range groups {
		for len(groups[gi]) < size && idx < len(perm) {
			groups[gi] = append(groups[gi], NodeID(perm[idx]+2))
			idx++
		}
	}
	return groups
}

// TestSparseDenseBitIdentical drives every Graph accessor over random
// dense-reference graphs and their sparse conversions.
func TestSparseDenseBitIdentical(t *testing.T) {
	for _, seed := range []uint64{1, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			s := rng.New(seed)
			const n = 60
			d := NewRandom(n, 1, 360, s.Split("graph"))
			// Thin the graph so sparse paths with absent edges are hit.
			thin := s.Split("thin")
			d.Pairs(func(i, j NodeID, _ float64) {
				if thin.Bernoulli(0.5) {
					d.SetRate(i, j, 0)
				}
			})
			sp := d.toSparse()
			if sp.Sparse() == d.Sparse() {
				t.Fatal("conversion did not change backend")
			}

			if err := d.Validate(); err != nil {
				t.Fatalf("dense Validate: %v", err)
			}
			if err := sp.Validate(); err != nil {
				t.Fatalf("sparse Validate: %v", err)
			}

			for i := NodeID(0); i < n; i++ {
				for j := NodeID(0); j < n; j++ {
					if d.Rate(i, j) != sp.Rate(i, j) {
						t.Fatalf("Rate(%d,%d): dense %v sparse %v", i, j, d.Rate(i, j), sp.Rate(i, j))
					}
				}
				if d.Degree(i) != sp.Degree(i) {
					t.Fatalf("Degree(%d): dense %d sparse %d", i, d.Degree(i), sp.Degree(i))
				}
			}

			type pair struct {
				i, j NodeID
				r    float64
			}
			var dp, sp2 []pair
			d.Pairs(func(i, j NodeID, r float64) { dp = append(dp, pair{i, j, r}) })
			sp.Pairs(func(i, j NodeID, r float64) { sp2 = append(sp2, pair{i, j, r}) })
			if len(dp) != len(sp2) {
				t.Fatalf("Pairs count: dense %d sparse %d", len(dp), len(sp2))
			}
			for k := range dp {
				if dp[k] != sp2[k] {
					t.Fatalf("Pairs[%d]: dense %+v sparse %+v", k, dp[k], sp2[k])
				}
			}

			sets := s.Split("sets")
			for trial := 0; trial < 20; trial++ {
				var set []NodeID
				for _, v := range sets.Sample(n, 1+sets.IntN(8)) {
					set = append(set, NodeID(v))
				}
				i := NodeID(sets.IntN(n))
				if d.TotalRate(i, set) != sp.TotalRate(i, set) {
					t.Fatalf("TotalRate(%d, %v): dense %v sparse %v", i, set, d.TotalRate(i, set), sp.TotalRate(i, set))
				}
			}

			if d.MeanRate() != sp.MeanRate() {
				t.Fatalf("MeanRate: dense %v sparse %v", d.MeanRate(), sp.MeanRate())
			}

			groups := randGroups(s.Split("groups"), n, 3, 4)
			dr, derr := GroupPathRates(d, 0, 1, groups)
			sr, serr := GroupPathRates(sp, 0, 1, groups)
			if (derr == nil) != (serr == nil) {
				t.Fatalf("GroupPathRates errors diverge: dense %v sparse %v", derr, serr)
			}
			for k := range dr {
				if dr[k] != sr[k] {
					t.Fatalf("GroupPathRates[%d]: dense %v sparse %v", k, dr[k], sr[k])
				}
			}

			var db, sb bytes.Buffer
			if _, err := d.WriteTo(&db); err != nil {
				t.Fatal(err)
			}
			if _, err := sp.WriteTo(&sb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(db.Bytes(), sb.Bytes()) {
				t.Fatal("serialized graphs differ between backends")
			}

			// Clone stays on its backend and compares equal via bytes.
			dc, sc := d.Clone(), sp.Clone()
			if dc.Sparse() || !sc.Sparse() {
				t.Fatal("Clone changed backend")
			}
			var dcb, scb bytes.Buffer
			if _, err := dc.WriteTo(&dcb); err != nil {
				t.Fatal(err)
			}
			if _, err := sc.WriteTo(&scb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dcb.Bytes(), db.Bytes()) || !bytes.Equal(scb.Bytes(), sb.Bytes()) {
				t.Fatal("clones serialize differently from originals")
			}

			// Round-trip through toDense closes the loop.
			back := sp.toDense()
			var bb bytes.Buffer
			if _, err := back.WriteTo(&bb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bb.Bytes(), db.Bytes()) {
				t.Fatal("sparse->dense round trip drifted")
			}
		})
	}
}

// TestSparseSetRateRemoval covers the sparse delete path: setting a
// rate to zero removes the edge from both directed lists.
func TestSparseSetRateRemoval(t *testing.T) {
	restore := SetDenseNodeLimit(0)
	defer restore()
	g := NewGraph(5)
	g.SetRate(1, 3, 0.5)
	g.SetRate(1, 2, 0.25)
	g.SetRate(1, 4, 0.125)
	if got := g.Degree(1); got != 3 {
		t.Fatalf("Degree(1) = %d, want 3", got)
	}
	g.SetRate(3, 1, 0) // remove via the mirrored orientation
	if got := g.Degree(1); got != 2 {
		t.Fatalf("after removal Degree(1) = %d, want 2", got)
	}
	if got := g.Rate(1, 3); got != 0 {
		t.Fatalf("removed rate = %v, want 0", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Removing a non-existent edge is a no-op.
	g.SetRate(0, 4, 0)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSparseInsertionOrderIndependent asserts the adjacency structure
// is canonical regardless of SetRate order (EstimateRates feeds edges
// in random map order).
func TestSparseInsertionOrderIndependent(t *testing.T) {
	restore := SetDenseNodeLimit(0)
	defer restore()
	type e struct {
		i, j NodeID
		r    float64
	}
	edges := []e{{0, 1, 1}, {0, 2, 2}, {0, 3, 3}, {1, 3, 4}, {2, 3, 5}, {1, 2, 6}}
	s := rng.New(9)
	var ref []byte
	for trial := 0; trial < 10; trial++ {
		perm := s.Perm(len(edges))
		g := NewGraph(4)
		for _, k := range perm {
			g.SetRate(edges[k].i, edges[k].j, edges[k].r)
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = buf.Bytes()
			continue
		}
		if !bytes.Equal(ref, buf.Bytes()) {
			t.Fatalf("insertion order %v produced a different graph", perm)
		}
	}
}

// FuzzReadGraphSparseDense parses arbitrary input on both backends:
// accept/reject decisions and the re-serialized bytes must agree.
func FuzzReadGraphSparseDense(f *testing.F) {
	f.Add("nodes 3\n0 1 0.5\n1 2 0.25\n")
	f.Add("nodes 3\n0 1 0.5\n0 1 0.75\n") // duplicate edge: last wins
	f.Add("nodes 2\n0 0 1\n")             // self loop: reject
	f.Add("nodes 3\n0 1 0.5\n1 2")        // torn final line
	f.Add("nodes 99999999999\n")          // absurd header: reject, no OOM
	f.Add("nodes 16777217\n")             // MaxNodes+1
	f.Add("# comment\n\nnodes 2\n0 1 1e-9\n")
	f.Add("nodes 2\n0 1 NaN\n")
	f.Add("nodes 2\n0 1 -1\n")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		// Oversized-but-valid headers make the dense pass allocate n*n;
		// cap what this harness is willing to materialize densely.
		for _, line := range strings.Split(input, "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			var v int
			if n, err := fmt.Sscanf(line, "nodes %d", &v); n == 1 && err == nil && v > 4096 {
				return
			}
			break
		}
		dg, derr := ReadGraph(strings.NewReader(input))
		restore := SetDenseNodeLimit(0)
		sg, serr := ReadGraph(strings.NewReader(input))
		restore()
		if (derr == nil) != (serr == nil) {
			t.Fatalf("accept/reject diverged: dense err=%v sparse err=%v", derr, serr)
		}
		if derr != nil {
			return
		}
		if !sg.Sparse() {
			t.Fatal("forced-sparse parse produced a dense graph")
		}
		if err := dg.Validate(); err != nil {
			t.Fatalf("accepted dense graph fails Validate: %v", err)
		}
		if err := sg.Validate(); err != nil {
			t.Fatalf("accepted sparse graph fails Validate: %v", err)
		}
		var db, sb bytes.Buffer
		if _, err := dg.WriteTo(&db); err != nil {
			t.Fatal(err)
		}
		if _, err := sg.WriteTo(&sb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(db.Bytes(), sb.Bytes()) {
			t.Fatal("round-tripped bytes differ between backends")
		}
	})
}
