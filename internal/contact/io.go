package contact

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Graph exchange format: reproducible experiment setups can be saved
// and shared as plain text. One header line "nodes <n>", then one line
// per positive-rate pair: "<i> <j> <rate>". '#' comments and blank
// lines are ignored.

// WriteTo serializes the graph.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	n, err := fmt.Fprintf(bw, "# contact graph: %d nodes\nnodes %d\n", g.n, g.n)
	total += int64(n)
	if err != nil {
		return total, fmt.Errorf("contact: write header: %w", err)
	}
	var werr error
	g.Pairs(func(i, j NodeID, rate float64) {
		if werr != nil {
			return
		}
		n, err := fmt.Fprintf(bw, "%d %d %s\n", i, j, strconv.FormatFloat(rate, 'g', -1, 64))
		total += int64(n)
		werr = err
	})
	if werr != nil {
		return total, fmt.Errorf("contact: write pair: %w", werr)
	}
	if err := bw.Flush(); err != nil {
		return total, fmt.Errorf("contact: flush: %w", err)
	}
	return total, nil
}

// ReadGraph parses a graph in the exchange format.
func ReadGraph(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var g *Graph
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if g == nil {
			if len(fields) != 2 || fields[0] != "nodes" {
				return nil, fmt.Errorf("contact: line %d: want \"nodes <n>\" header, got %q", lineNo, line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("contact: line %d: bad node count %q", lineNo, fields[1])
			}
			// New validates n against MaxNodes before allocating, so a
			// corrupt header cannot trigger an n*n OOM.
			g, err = New(n)
			if err != nil {
				return nil, fmt.Errorf("contact: line %d: %v", lineNo, err)
			}
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("contact: line %d: want \"i j rate\", got %d fields", lineNo, len(fields))
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("contact: line %d: bad node %q: %w", lineNo, fields[0], err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("contact: line %d: bad node %q: %w", lineNo, fields[1], err)
		}
		rate, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("contact: line %d: bad rate %q: %w", lineNo, fields[2], err)
		}
		if i < 0 || i >= g.N() || j < 0 || j >= g.N() {
			return nil, fmt.Errorf("contact: line %d: pair (%d,%d) out of range [0,%d)", lineNo, i, j, g.N())
		}
		if i == j {
			return nil, fmt.Errorf("contact: line %d: self pair", lineNo)
		}
		// NaN fails every ordered comparison, so `rate <= 0` alone would
		// accept it and corrupt the graph.
		if !(rate > 0) || math.IsInf(rate, 1) {
			return nil, fmt.Errorf("contact: line %d: rate %v is not a positive finite number", lineNo, rate)
		}
		g.SetRate(NodeID(i), NodeID(j), rate)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("contact: read: %w", err)
	}
	if g == nil {
		return nil, errors.New("contact: empty input")
	}
	return g, nil
}
