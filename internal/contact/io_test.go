package contact

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestGraphRoundTrip(t *testing.T) {
	g := NewRandom(25, 1, 360, rng.New(1))
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 25 {
		t.Fatalf("N = %d", got.N())
	}
	for i := 0; i < 25; i++ {
		for j := 0; j < 25; j++ {
			if got.Rate(NodeID(i), NodeID(j)) != g.Rate(NodeID(i), NodeID(j)) {
				t.Fatalf("rate (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestGraphRoundTripSparse(t *testing.T) {
	g := NewGraph(5)
	g.SetRate(0, 3, 0.125)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rate(0, 3) != 0.125 || got.Rate(0, 1) != 0 {
		t.Fatal("sparse round trip wrong")
	}
}

func TestReadGraphErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "# only comments\n",
		"no header":     "0 1 0.5\n",
		"bad count":     "nodes x\n",
		"zero count":    "nodes 0\n",
		"bad fields":    "nodes 3\n0 1\n",
		"bad node":      "nodes 3\nx 1 0.5\n",
		"bad rate":      "nodes 3\n0 1 x\n",
		"out of range":  "nodes 3\n0 7 0.5\n",
		"self pair":     "nodes 3\n1 1 0.5\n",
		"negative rate": "nodes 3\n0 1 -2\n",
		"zero rate":     "nodes 3\n0 1 0\n",
	}
	for name, in := range cases {
		if _, err := ReadGraph(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadGraphIgnoresCommentsAndBlanks(t *testing.T) {
	in := "# hello\n\nnodes 2\n# pair\n0 1 0.25\n\n"
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Rate(0, 1) != 0.25 {
		t.Fatal("rate lost")
	}
}
