package contact

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewGraphEmpty(t *testing.T) {
	g := NewGraph(3)
	if g.N() != 3 {
		t.Fatalf("N = %d", g.N())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if g.Rate(NodeID(i), NodeID(j)) != 0 {
				t.Fatal("new graph should have zero rates")
			}
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewGraphPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewGraph(0)
}

func TestSetRateSymmetric(t *testing.T) {
	g := NewGraph(4)
	g.SetRate(1, 3, 0.25)
	if g.Rate(1, 3) != 0.25 || g.Rate(3, 1) != 0.25 {
		t.Fatal("rate not symmetric")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetRateSelfZeroAllowed(t *testing.T) {
	g := NewGraph(2)
	g.SetRate(1, 1, 0) // no-op, allowed
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-zero self rate")
		}
	}()
	g.SetRate(1, 1, 0.5)
}

func TestSetRatePanicsNegative(t *testing.T) {
	g := NewGraph(2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative rate")
		}
	}()
	g.SetRate(0, 1, -1)
}

func TestRatePanicsOutOfRange(t *testing.T) {
	g := NewGraph(2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range node")
		}
	}()
	g.Rate(0, 5)
}

func TestMeanICT(t *testing.T) {
	g := NewGraph(2)
	g.SetRate(0, 1, 0.2)
	ict, ok := g.MeanICT(0, 1)
	if !ok || math.Abs(ict-5) > 1e-12 {
		t.Fatalf("MeanICT = %v, %v", ict, ok)
	}
	g2 := NewGraph(2)
	if _, ok := g2.MeanICT(0, 1); ok {
		t.Fatal("never-meeting pair should report ok=false")
	}
}

func TestNewRandomRateBounds(t *testing.T) {
	s := rng.New(1)
	g := NewRandom(30, 1, 360, s)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.Pairs(func(i, j NodeID, r float64) {
		ict := 1 / r
		if ict < 1 || ict >= 360 {
			t.Fatalf("pair (%d,%d) ICT %v out of [1,360)", i, j, ict)
		}
	})
	// Fully connected: every pair has a rate.
	cnt := 0
	g.Pairs(func(_, _ NodeID, _ float64) { cnt++ })
	if cnt != 30*29/2 {
		t.Fatalf("pair count %d, want %d", cnt, 30*29/2)
	}
}

func TestNewRandomDeterministic(t *testing.T) {
	a := NewRandom(10, 1, 360, rng.New(7))
	b := NewRandom(10, 1, 360, rng.New(7))
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if a.Rate(NodeID(i), NodeID(j)) != b.Rate(NodeID(i), NodeID(j)) {
				t.Fatal("same seed produced different graphs")
			}
		}
	}
}

func TestNewRandomPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRandom(5, 10, 5, rng.New(1))
}

func TestDegree(t *testing.T) {
	g := NewGraph(4)
	g.SetRate(0, 1, 1)
	g.SetRate(0, 2, 1)
	if g.Degree(0) != 2 || g.Degree(3) != 0 || g.Degree(1) != 1 {
		t.Fatalf("degrees: %d %d %d", g.Degree(0), g.Degree(3), g.Degree(1))
	}
}

func TestTotalRateSkipsSelf(t *testing.T) {
	g := NewGraph(4)
	g.SetRate(0, 1, 0.5)
	g.SetRate(0, 2, 0.25)
	set := []NodeID{0, 1, 2} // includes the node itself
	if got := g.TotalRate(0, set); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("TotalRate = %v, want 0.75", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := NewGraph(3)
	g.SetRate(0, 1, 1)
	c := g.Clone()
	c.SetRate(0, 1, 2)
	if g.Rate(0, 1) != 1 {
		t.Fatal("clone shares backing storage")
	}
}

func TestGroupPathRatesManual(t *testing.T) {
	// 6 nodes: s=0, d=5, R1={1,2}, R2={3,4}.
	g := NewGraph(6)
	g.SetRate(0, 1, 0.1)
	g.SetRate(0, 2, 0.2)
	g.SetRate(1, 3, 0.3)
	g.SetRate(1, 4, 0.4)
	g.SetRate(2, 3, 0.5)
	g.SetRate(2, 4, 0.6)
	g.SetRate(3, 5, 0.7)
	g.SetRate(4, 5, 0.8)
	groups := [][]NodeID{{1, 2}, {3, 4}}
	rates, err := GroupPathRates(g, 0, 5, groups)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{
		0.1 + 0.2,                   // lambda_1: s to R1
		(0.3 + 0.4 + 0.5 + 0.6) / 2, // lambda_2: mean over R1 of sums to R2
		0.7 + 0.8,                   // lambda_3: R2 to d
	}
	if len(rates) != len(want) {
		t.Fatalf("got %d rates, want %d", len(rates), len(want))
	}
	for k := range want {
		if math.Abs(rates[k]-want[k]) > 1e-12 {
			t.Fatalf("lambda_%d = %v, want %v", k+1, rates[k], want[k])
		}
	}
}

func TestGroupPathRatesZeroHopError(t *testing.T) {
	g := NewGraph(4)
	g.SetRate(0, 1, 1)
	// R1={1}, but node 1 never meets d=3.
	if _, err := GroupPathRates(g, 0, 3, [][]NodeID{{1}}); err == nil {
		t.Fatal("expected error for unreachable destination")
	}
}

func TestGroupPathRatesEmptyGroups(t *testing.T) {
	g := NewGraph(3)
	if _, err := GroupPathRates(g, 0, 2, nil); err == nil {
		t.Fatal("expected error for no groups")
	}
	if _, err := GroupPathRates(g, 0, 2, [][]NodeID{{1}, {}}); err == nil {
		t.Fatal("expected error for empty group")
	}
}

func TestGroupPathRatesLengthProperty(t *testing.T) {
	s := rng.New(11)
	f := func(rawK, rawG uint8) bool {
		k := int(rawK%5) + 1
		gs := int(rawG%4) + 1
		n := 2 + k*gs
		g := NewRandom(n, 1, 100, s.SplitN("g", int(rawK)*17+int(rawG)))
		groups := make([][]NodeID, k)
		id := 1
		for i := range groups {
			for j := 0; j < gs; j++ {
				groups[i] = append(groups[i], NodeID(id))
				id++
			}
		}
		rates, err := GroupPathRates(g, 0, NodeID(n-1), groups)
		if err != nil {
			return false
		}
		if len(rates) != k+1 {
			return false
		}
		for _, r := range rates {
			if r <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupPathRatesExcludesDestinationInLastGroup(t *testing.T) {
	// If the destination happens to be listed in the last group its
	// self-rate must not contribute.
	g := NewGraph(3)
	g.SetRate(0, 1, 1)
	g.SetRate(1, 2, 2)
	rates, err := GroupPathRates(g, 0, 2, [][]NodeID{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rates[1]-2) > 1e-12 {
		t.Fatalf("last hop rate %v, want 2 (dst excluded)", rates[1])
	}
}

func TestMeanRate(t *testing.T) {
	g := NewGraph(3)
	if g.MeanRate() != 0 {
		t.Fatal("empty graph mean rate should be 0")
	}
	g.SetRate(0, 1, 1)
	g.SetRate(1, 2, 3)
	if math.Abs(g.MeanRate()-2) > 1e-12 {
		t.Fatalf("mean rate %v, want 2", g.MeanRate())
	}
}

func BenchmarkNewRandom100(b *testing.B) {
	s := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = NewRandom(100, 1, 360, s)
	}
}

func BenchmarkGroupPathRates(b *testing.B) {
	s := rng.New(1)
	g := NewRandom(100, 1, 360, s)
	groups := [][]NodeID{{1, 2, 3, 4, 5}, {6, 7, 8, 9, 10}, {11, 12, 13, 14, 15}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = GroupPathRates(g, 0, 99, groups)
	}
}
