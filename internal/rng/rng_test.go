package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with the same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/64 draws", same)
	}
}

func TestSplitIndependentOfConsumption(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 10; i++ {
		a.Uint64() // consume a but not b
	}
	ca, cb := a.Split("child"), b.Split("child")
	for i := 0; i < 50; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatal("split children depend on parent consumption")
		}
	}
}

func TestSplitLabelsDistinct(t *testing.T) {
	s := New(7)
	a, b := s.Split("alpha"), s.Split("beta")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("differently labelled children matched %d/64 draws", same)
	}
}

func TestSplitNDistinct(t *testing.T) {
	s := New(9)
	seen := map[uint64]int{}
	for n := 0; n < 100; n++ {
		v := s.SplitN("run", n).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("SplitN(run,%d) first draw collides with n=%d", n, prev)
		}
		seen[v] = n
	}
}

func TestExpMean(t *testing.T) {
	s := New(11)
	const rate = 0.25
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exp(rate)
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.05*(1/rate) {
		t.Fatalf("Exp(%v) mean = %v, want ~%v", rate, mean, 1/rate)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(5)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := New(5)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(p) {
			hits++
		}
	}
	f := float64(hits) / n
	if math.Abs(f-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) frequency %v", p, f)
	}
}

func TestSampleProperties(t *testing.T) {
	s := New(13)
	f := func(rawN, rawK uint8) bool {
		n := int(rawN%100) + 1
		k := int(rawK) % (n + 1)
		got := s.Sample(n, k)
		if len(got) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleSparsePath(t *testing.T) {
	s := New(17)
	const n, k = 100000, 10 // triggers the sparse branch
	got := s.Sample(n, k)
	if len(got) != k {
		t.Fatalf("len = %d, want %d", len(got), k)
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= n {
			t.Fatalf("value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestSampleUniformity(t *testing.T) {
	s := New(19)
	const n, k, trials = 10, 3, 60000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range s.Sample(n, k) {
			counts[v]++
		}
	}
	want := float64(trials*k) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("value %d drawn %d times, want ~%v", v, c, want)
		}
	}
}

func TestPickOther(t *testing.T) {
	s := New(23)
	for avoid := 0; avoid < 5; avoid++ {
		for i := 0; i < 1000; i++ {
			v := s.PickOther(5, avoid)
			if v == avoid || v < 0 || v >= 5 {
				t.Fatalf("PickOther(5,%d) = %d", avoid, v)
			}
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(29)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm(50) invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestJitterBounds(t *testing.T) {
	s := New(31)
	for i := 0; i < 10000; i++ {
		v := s.Jitter(100, 0.1)
		if v < 90 || v > 110 {
			t.Fatalf("Jitter(100, 0.1) = %v out of bounds", v)
		}
	}
	if v := s.Jitter(100, -1); v < 90 || v > 110 {
		// negative f is clamped to 0: exact value
		if v != 100 {
			t.Fatalf("Jitter with clamped f=0 should be identity, got %v", v)
		}
	}
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Exp(0.5)
	}
}

func BenchmarkSampleDense(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Sample(100, 10)
	}
}

func BenchmarkSampleSparse(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Sample(100000, 5)
	}
}
