// Package rng provides deterministic, splittable random number streams
// used throughout the simulator and the experiment harness.
//
// Reproducibility is a first-class requirement: every experiment in the
// paper reproduction is driven by a root seed, and every independent
// consumer (contact process, group selection, adversary, ...) derives
// its own stream so that adding a new consumer never perturbs existing
// ones. Streams are backed by PCG from math/rand/v2.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// Stream is a deterministic random stream. The zero value is not
// usable; construct streams with New or Split.
type Stream struct {
	src *rand.Rand
	// seed material retained so the stream can be split.
	hi, lo uint64
}

// New returns a stream seeded from the given root seed.
func New(seed uint64) *Stream {
	hi := splitmix(seed)
	lo := splitmix(hi ^ 0x9e3779b97f4a7c15)
	return &Stream{src: rand.New(rand.NewPCG(hi, lo)), hi: hi, lo: lo}
}

// Split derives an independent child stream identified by label.
// Splitting is deterministic: the same parent seed and label always
// yield the same child, regardless of how much the parent has been
// consumed.
func (s *Stream) Split(label string) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	d := h.Sum64()
	hi := splitmix(s.hi ^ d)
	lo := splitmix(s.lo ^ bitreverse(d))
	return &Stream{src: rand.New(rand.NewPCG(hi, lo)), hi: hi, lo: lo}
}

// SplitN derives an independent child stream identified by label and an
// index, for families of streams (one per run, one per node, ...).
func (s *Stream) SplitN(label string, n int) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	d := h.Sum64() ^ splitmix(uint64(n)+0x51ed2701)
	hi := splitmix(s.hi ^ d)
	lo := splitmix(s.lo ^ bitreverse(d))
	return &Stream{src: rand.New(rand.NewPCG(hi, lo)), hi: hi, lo: lo}
}

// Float64 returns a uniform variate in [0, 1).
func (s *Stream) Float64() float64 { return s.src.Float64() }

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) IntN(n int) int { return s.src.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Stream) Uint64() uint64 { return s.src.Uint64() }

// Exp returns an exponential variate with the given rate (mean 1/rate).
// It panics if rate <= 0.
func (s *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp requires rate > 0")
	}
	return s.src.ExpFloat64() / rate
}

// Uniform returns a uniform variate in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.src.Float64()
}

// Bernoulli reports true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	switch {
	case p <= 0:
		return false
	case p >= 1:
		return true
	default:
		return s.src.Float64() < p
	}
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.src.Shuffle(n, swap) }

// Sample returns k distinct integers drawn uniformly from [0, n).
// It panics if k > n or k < 0.
func (s *Stream) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample requires 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	// Partial Fisher-Yates over an index table; O(n) space, O(k) swaps
	// once the table exists. For small k relative to n use a map-based
	// virtual table to avoid allocating n ints.
	if n > 4096 && k*8 < n {
		return s.sampleSparse(n, k)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + s.src.IntN(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := make([]int, k)
	copy(out, idx[:k])
	return out
}

func (s *Stream) sampleSparse(n, k int) []int {
	repl := make(map[int]int, k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + s.src.IntN(n-i)
		vi, ok := repl[i]
		if !ok {
			vi = i
		}
		vj, ok := repl[j]
		if !ok {
			vj = j
		}
		out[i] = vj
		repl[j] = vi
	}
	return out
}

// PickOther returns a uniform integer in [0, n) different from avoid.
// It panics if n < 2.
func (s *Stream) PickOther(n, avoid int) int {
	if n < 2 {
		panic("rng: PickOther requires n >= 2")
	}
	v := s.src.IntN(n - 1)
	if v >= avoid {
		v++
	}
	return v
}

// NormFloat64 returns a standard normal variate.
func (s *Stream) NormFloat64() float64 { return s.src.NormFloat64() }

// splitmix is the SplitMix64 finalizer, used to expand seed material.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func bitreverse(x uint64) uint64 {
	var r uint64
	for i := 0; i < 64; i++ {
		r = (r << 1) | (x & 1)
		x >>= 1
	}
	return r
}

// Jitter returns t multiplied by a uniform factor in [1-f, 1+f]; useful
// for de-synchronizing synthetic schedules. f is clamped to [0, 1].
func (s *Stream) Jitter(t, f float64) float64 {
	f = math.Max(0, math.Min(1, f))
	return t * s.Uniform(1-f, 1+f)
}
