package rng

import "testing"

// These tests document the determinism contract the experiment
// package's parallel Monte Carlo runner relies on: SplitN(label, i)
// yields a substream that (a) depends only on the parent's seed
// material, the label, and the index — never on how much the parent or
// any sibling has been consumed — and (b) never aliases the substream
// of any other (label, index) pair.

// drain returns the first k outputs of a stream.
func drain(s *Stream, k int) []uint64 {
	out := make([]uint64, k)
	for i := range out {
		out[i] = s.Uint64()
	}
	return out
}

func TestSplitNSubstreamsNeverAlias(t *testing.T) {
	const prefix = 64
	root := New(7)
	labels := []string{"trial", "route", "adv", "mc", "run", "a", "b", ""}
	indices := []int{0, 1, 2, 3, 15, 16, 100, 1000003, 1 << 30}

	type key struct {
		label string
		n     int
	}
	seen := make(map[[prefix]uint64]key, len(labels)*len(indices))
	for _, label := range labels {
		for _, n := range indices {
			var sig [prefix]uint64
			copy(sig[:], drain(root.SplitN(label, n), prefix))
			if prev, dup := seen[sig]; dup {
				t.Fatalf("SplitN(%q, %d) aliases SplitN(%q, %d): identical first %d outputs",
					label, n, prev.label, prev.n, prefix)
			}
			seen[sig] = key{label, n}
		}
	}

	// Substreams must also differ from Split(label) with the same label
	// and from the parent itself.
	for _, label := range labels {
		var sig [prefix]uint64
		copy(sig[:], drain(root.Split(label), prefix))
		if prev, dup := seen[sig]; dup {
			t.Fatalf("Split(%q) aliases SplitN(%q, %d)", label, prev.label, prev.n)
		}
	}
	var rootSig [prefix]uint64
	copy(rootSig[:], drain(New(7), prefix))
	if prev, dup := seen[rootSig]; dup {
		t.Fatalf("root stream aliases SplitN(%q, %d)", prev.label, prev.n)
	}
}

func TestSplitNStableAcrossCallsAndParentConsumption(t *testing.T) {
	const prefix = 64
	root := New(99)
	first := drain(root.SplitN("trial", 12), prefix)

	// Same call again: identical.
	again := drain(root.SplitN("trial", 12), prefix)
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("SplitN is not stable across calls: output %d differs", i)
		}
	}

	// Consuming the parent must not perturb the substream.
	for i := 0; i < 1000; i++ {
		root.Uint64()
	}
	after := drain(root.SplitN("trial", 12), prefix)
	for i := range first {
		if first[i] != after[i] {
			t.Fatalf("SplitN depends on parent consumption: output %d differs", i)
		}
	}

	// Consuming a sibling substream must not perturb it either.
	drain(root.SplitN("trial", 13), prefix)
	sibling := drain(root.SplitN("trial", 12), prefix)
	for i := range first {
		if first[i] != sibling[i] {
			t.Fatalf("SplitN depends on sibling consumption: output %d differs", i)
		}
	}

	// A fresh parent with the same seed derives the same substream.
	fresh := drain(New(99).SplitN("trial", 12), prefix)
	for i := range first {
		if first[i] != fresh[i] {
			t.Fatalf("SplitN not reproducible from a fresh parent: output %d differs", i)
		}
	}
}
