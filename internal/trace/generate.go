package trace

import (
	"fmt"

	"repro/internal/contact"
	"repro/internal/rng"
)

// DiurnalConfig describes a synthetic human-contact trace with a
// business-hours activity pattern: contacts happen only inside activity
// windows; nights (and, optionally, breaks between sessions within a
// day) are silent. This is the structure the paper identifies in the
// haggle traces ("most likely there is no contact in off-business
// hours", Sec. V-A; "there is no contact during this period",
// Sec. V-E).
type DiurnalConfig struct {
	Nodes int // population size
	Days  int // number of days covered
	// Daily activity window, in hours from midnight [0, 24).
	DayStartHour float64
	DayEndHour   float64
	// Within the daily window, activity alternates between sessions of
	// SessionMinutes and silent breaks of BreakMinutes. BreakMinutes=0
	// yields one continuous window per day.
	SessionMinutes float64
	BreakMinutes   float64
	// MeanICT is the per-pair mean inter-contact time in seconds while
	// a session is active. Each pair gets an individual mean drawn
	// uniformly from [0.5, 2.0] x MeanICT, giving the heterogeneity of
	// real traces.
	MeanICT float64
	// ContactSeconds is the mean duration of a single contact.
	ContactSeconds float64
	// PairProb is the probability that a given pair of nodes ever
	// meets (1 = every pair, lower values thin the contact graph).
	PairProb float64
}

func (c DiurnalConfig) validate() error {
	switch {
	case c.Nodes < 2:
		return fmt.Errorf("trace: need at least 2 nodes, got %d", c.Nodes)
	case c.Days < 1:
		return fmt.Errorf("trace: need at least 1 day, got %d", c.Days)
	case c.DayStartHour < 0 || c.DayEndHour > 24 || c.DayEndHour <= c.DayStartHour:
		return fmt.Errorf("trace: invalid activity window [%v, %v]", c.DayStartHour, c.DayEndHour)
	case c.SessionMinutes <= 0:
		return fmt.Errorf("trace: session length must be positive, got %v", c.SessionMinutes)
	case c.BreakMinutes < 0:
		return fmt.Errorf("trace: break length must be non-negative, got %v", c.BreakMinutes)
	case c.MeanICT <= 0:
		return fmt.Errorf("trace: mean ICT must be positive, got %v", c.MeanICT)
	case c.ContactSeconds < 0:
		return fmt.Errorf("trace: contact duration must be non-negative, got %v", c.ContactSeconds)
	case c.PairProb <= 0 || c.PairProb > 1:
		return fmt.Errorf("trace: pair probability must be in (0,1], got %v", c.PairProb)
	}
	return nil
}

// sessions returns the active intervals [start, end) in seconds across
// the whole trace span.
func (c DiurnalConfig) sessions() [][2]float64 {
	const daySec = 24 * 3600
	var out [][2]float64
	for d := 0; d < c.Days; d++ {
		dayBase := float64(d) * daySec
		winStart := dayBase + c.DayStartHour*3600
		winEnd := dayBase + c.DayEndHour*3600
		if c.BreakMinutes == 0 {
			out = append(out, [2]float64{winStart, winEnd})
			continue
		}
		t := winStart
		for t < winEnd {
			end := t + c.SessionMinutes*60
			if end > winEnd {
				end = winEnd
			}
			out = append(out, [2]float64{t, end})
			t = end + c.BreakMinutes*60
		}
	}
	return out
}

// Generate builds a synthetic diurnal contact trace. The same config
// and stream always produce the same trace.
func Generate(cfg DiurnalConfig, s *rng.Stream) (*Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sessions := cfg.sessions()
	tr := &Trace{NodeCount: cfg.Nodes}
	pairStream := s.Split("pairs")
	for i := 0; i < cfg.Nodes; i++ {
		for j := i + 1; j < cfg.Nodes; j++ {
			ps := pairStream.SplitN("pair", i*cfg.Nodes+j)
			if !ps.Bernoulli(cfg.PairProb) {
				continue
			}
			meanICT := cfg.MeanICT * ps.Uniform(0.5, 2.0)
			rate := 1 / meanICT
			for _, win := range sessions {
				t := win[0] + ps.Exp(rate)
				for t < win[1] {
					dur := 0.0
					if cfg.ContactSeconds > 0 {
						dur = ps.Exp(1 / cfg.ContactSeconds)
					}
					tr.Contacts = append(tr.Contacts, Contact{
						A: contact.NodeID(i), B: contact.NodeID(j),
						Start: t, End: t + dur,
					})
					t += ps.Exp(rate)
				}
			}
		}
	}
	tr.SortByStart()
	if len(tr.Contacts) == 0 {
		return nil, fmt.Errorf("trace: configuration produced no contacts")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// CambridgeConfig is the synthetic stand-in for CRAWDAD
// cambridge/haggle Experiment 2: 12 iMotes carried by students, a
// small and *dense* contact graph over several days where a message
// can traverse 4 hops within ~30 minutes of business time (Fig. 14
// saturates at 1800 s).
func CambridgeConfig() DiurnalConfig {
	return DiurnalConfig{
		Nodes:          12,
		Days:           5,
		DayStartHour:   9,
		DayEndHour:     17,
		SessionMinutes: 8 * 60, // one continuous window
		BreakMinutes:   0,
		MeanICT:        300, // dense: pairs meet every ~5 active minutes
		ContactSeconds: 120,
		PairProb:       1,
	}
}

// InfocomConfig is the synthetic stand-in for CRAWDAD cambridge/haggle
// Experiment 3 (Infocom 2005): 41 iMotes at a conference, a *medium*
// density graph where contacts cluster in short bursts (session breaks)
// separated by long silent periods — the cause of the delivery-rate
// plateau between ~256 s and ~4096 s in Fig. 17.
func InfocomConfig() DiurnalConfig {
	return DiurnalConfig{
		Nodes:          41,
		Days:           4,
		DayStartHour:   9,
		DayEndHour:     18,
		SessionMinutes: 8,  // short mingling bursts...
		BreakMinutes:   64, // ...separated by long talk sessions
		MeanICT:        90, // intense contact during bursts
		ContactSeconds: 60,
		PairProb:       0.6,
	}
}

// GenerateCambridge generates the Cambridge-like trace.
func GenerateCambridge(s *rng.Stream) (*Trace, error) {
	return Generate(CambridgeConfig(), s)
}

// GenerateInfocom generates the Infocom 2005-like trace.
func GenerateInfocom(s *rng.Stream) (*Trace, error) {
	return Generate(InfocomConfig(), s)
}
