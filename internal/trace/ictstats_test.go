package trace

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestICTOf(t *testing.T) {
	tr := &Trace{NodeCount: 3, Contacts: []Contact{
		{A: 0, B: 1, Start: 10, End: 10},
		{A: 1, B: 0, Start: 25, End: 25}, // reversed pair order
		{A: 0, B: 1, Start: 65, End: 65},
		{A: 0, B: 2, Start: 100, End: 100},
	}}
	gaps := tr.ICTOf(0, 1)
	if len(gaps) != 2 || gaps[0] != 15 || gaps[1] != 40 {
		t.Fatalf("gaps = %v", gaps)
	}
	if tr.ICTOf(0, 2) != nil {
		t.Fatal("single contact should yield no gaps")
	}
	if tr.ICTOf(1, 2) != nil {
		t.Fatal("never-meeting pair should yield no gaps")
	}
}

func TestSummarizeICT(t *testing.T) {
	tr := &Trace{NodeCount: 2, Contacts: []Contact{
		{A: 0, B: 1, Start: 0, End: 0},
		{A: 0, B: 1, Start: 10, End: 10},
		{A: 0, B: 1, Start: 30, End: 30},
	}}
	st, err := tr.SummarizeICT()
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != 2 || math.Abs(st.Mean-15) > 1e-12 || st.Max != 20 {
		t.Fatalf("%+v", st)
	}
}

func TestSummarizeICTErrors(t *testing.T) {
	tr := &Trace{NodeCount: 2, Contacts: []Contact{{A: 0, B: 1, Start: 5, End: 5}}}
	if _, err := tr.SummarizeICT(); err == nil {
		t.Fatal("accepted trace with no repeated pair")
	}
	if _, err := tr.SessionICTStats(0); err == nil {
		t.Fatal("accepted non-positive session gap")
	}
}

// TestSyntheticTracesExponentialWithinSessions validates the generator
// against the paper's network model: within activity sessions the
// inter-contact times are exponential (CV ~ 1), while the pooled
// marginal is heavier-tailed because of the diurnal gaps — the exact
// structure the paper blames for the Infocom model gap (Sec. V-E).
func TestSyntheticTracesExponentialWithinSessions(t *testing.T) {
	tr, err := GenerateCambridge(rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	// Within sessions: gaps below one hour are within the business day.
	within, err := tr.SessionICTStats(3600)
	if err != nil {
		t.Fatal(err)
	}
	if within.CV < 0.7 || within.CV > 1.3 {
		t.Fatalf("within-session CV = %v, want ~1 (exponential)", within.CV)
	}
	// Pooled marginal includes overnight silences: heavier tailed.
	pooled, err := tr.SummarizeICT()
	if err != nil {
		t.Fatal(err)
	}
	if pooled.CV <= within.CV {
		t.Fatalf("pooled CV %v not above within-session CV %v", pooled.CV, within.CV)
	}
	if pooled.Max < 12*3600 {
		t.Fatalf("pooled max gap %v s misses the overnight silence", pooled.Max)
	}
}

func TestInfocomSessionStructureVisibleInICT(t *testing.T) {
	tr, err := GenerateInfocom(rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	within, err := tr.SessionICTStats(480) // inside an 8-minute burst
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := tr.SummarizeICT()
	if err != nil {
		t.Fatal(err)
	}
	// Burst contacts are dense (mean well under the burst length);
	// the pooled mean is dominated by inter-burst breaks.
	if within.Mean >= 480 {
		t.Fatalf("within-burst mean %v too large", within.Mean)
	}
	if pooled.Mean < 4*within.Mean {
		t.Fatalf("pooled mean %v vs within %v: session breaks not visible", pooled.Mean, within.Mean)
	}
}
