package trace

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/contact"
)

// Inter-contact time statistics. The paper's network model assumes
// exponential inter-contact times (Sec. III-A); these helpers quantify
// how well a trace — real or synthetic — fits that assumption, and
// feed the trace-vs-model caveats in Sec. V-E (diurnal gaps make the
// marginal ICT distribution heavy-tailed even when within-session
// contacts are Poisson).

// ICTStats summarizes the pairwise inter-contact times of a trace.
type ICTStats struct {
	Samples int     // number of inter-contact gaps measured
	Mean    float64 // seconds
	Median  float64
	CV      float64 // coefficient of variation; 1 for exponential
	Max     float64
}

// ICTOf returns the inter-contact gaps of one pair, in seconds,
// measured start-to-start.
func (t *Trace) ICTOf(a, b contact.NodeID) []float64 {
	var times []float64
	for _, c := range t.Contacts {
		if (c.A == a && c.B == b) || (c.A == b && c.B == a) {
			times = append(times, c.Start)
		}
	}
	if len(times) < 2 {
		return nil
	}
	gaps := make([]float64, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, times[i]-times[i-1])
	}
	return gaps
}

// SummarizeICT pools the inter-contact gaps of every pair.
func (t *Trace) SummarizeICT() (ICTStats, error) {
	var gaps []float64
	for a := 0; a < t.NodeCount; a++ {
		for b := a + 1; b < t.NodeCount; b++ {
			gaps = append(gaps, t.ICTOf(contact.NodeID(a), contact.NodeID(b))...)
		}
	}
	if len(gaps) == 0 {
		return ICTStats{}, fmt.Errorf("trace: no pair meets twice, no ICT to measure")
	}
	sort.Float64s(gaps)
	var sum, sumSq float64
	for _, g := range gaps {
		sum += g
		sumSq += g * g
	}
	n := float64(len(gaps))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	st := ICTStats{
		Samples: len(gaps),
		Mean:    mean,
		Median:  gaps[len(gaps)/2],
		Max:     gaps[len(gaps)-1],
	}
	if mean > 0 {
		st.CV = math.Sqrt(variance) / mean
	}
	return st, nil
}

// SessionICTStats measures inter-contact times only WITHIN activity
// sessions: gaps longer than sessionGap seconds are treated as
// off-hours boundaries and excluded. Within sessions the synthetic
// generators are exponential by construction (CV near 1); the pooled
// marginal (SummarizeICT) is heavier-tailed because of the diurnal
// silence, which is exactly the discrepancy the paper blames for the
// Infocom model gap (Sec. V-E).
func (t *Trace) SessionICTStats(sessionGap float64) (ICTStats, error) {
	if sessionGap <= 0 {
		return ICTStats{}, fmt.Errorf("trace: session gap must be positive, got %v", sessionGap)
	}
	var gaps []float64
	for a := 0; a < t.NodeCount; a++ {
		for b := a + 1; b < t.NodeCount; b++ {
			for _, g := range t.ICTOf(contact.NodeID(a), contact.NodeID(b)) {
				if g <= sessionGap {
					gaps = append(gaps, g)
				}
			}
		}
	}
	if len(gaps) == 0 {
		return ICTStats{}, fmt.Errorf("trace: no within-session ICT below %v s", sessionGap)
	}
	sort.Float64s(gaps)
	var sum, sumSq float64
	for _, g := range gaps {
		sum += g
		sumSq += g * g
	}
	n := float64(len(gaps))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	st := ICTStats{
		Samples: len(gaps),
		Mean:    mean,
		Median:  gaps[len(gaps)/2],
		Max:     gaps[len(gaps)-1],
	}
	if mean > 0 {
		st.CV = math.Sqrt(variance) / mean
	}
	return st, nil
}
