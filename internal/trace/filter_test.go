package trace

import (
	"testing"

	"repro/internal/contact"
	"repro/internal/rng"
)

func filterFixture() *Trace {
	return &Trace{NodeCount: 5, Contacts: []Contact{
		{A: 0, B: 1, Start: 0, End: 1},
		{A: 0, B: 4, Start: 5, End: 6}, // 4 = "stationary"
		{A: 1, B: 2, Start: 10, End: 11},
		{A: 2, B: 4, Start: 15, End: 16}, // stationary again
		{A: 0, B: 1, Start: 20, End: 21},
	}}
}

func TestFilterNodesExcludesAndCompacts(t *testing.T) {
	tr := filterFixture()
	out, err := tr.FilterNodes(func(v contact.NodeID) bool { return v != 4 })
	if err != nil {
		t.Fatal(err)
	}
	if out.NodeCount != 3 {
		t.Fatalf("NodeCount = %d, want 3 (compacted)", out.NodeCount)
	}
	if len(out.Contacts) != 3 {
		t.Fatalf("contacts = %d, want 3", len(out.Contacts))
	}
	for _, c := range out.Contacts {
		if int(c.A) >= 3 || int(c.B) >= 3 {
			t.Fatalf("uncompacted id in %+v", c)
		}
	}
}

func TestFilterNodesErrors(t *testing.T) {
	tr := filterFixture()
	if _, err := tr.FilterNodes(nil); err == nil {
		t.Fatal("accepted nil predicate")
	}
	if _, err := tr.FilterNodes(func(contact.NodeID) bool { return false }); err == nil {
		t.Fatal("accepted empty result")
	}
}

func TestMinContactsPredicate(t *testing.T) {
	tr := filterFixture()
	keep := tr.MinContacts(3)
	// Node 0 and 1 appear 3 times; node 2 twice; node 4 twice; node 3
	// never.
	if !keep(0) || !keep(1) {
		t.Fatal("frequent nodes dropped")
	}
	if keep(2) || keep(4) || keep(3) {
		t.Fatal("infrequent nodes kept")
	}
	// Chaining: filter to the mobile, well-observed population.
	out, err := tr.FilterNodes(keep)
	if err != nil {
		t.Fatal(err)
	}
	if out.NodeCount != 2 || len(out.Contacts) != 2 {
		t.Fatalf("filtered trace: %d nodes, %d contacts", out.NodeCount, len(out.Contacts))
	}
}

func TestWindow(t *testing.T) {
	tr := filterFixture()
	out, err := tr.Window(5, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Contacts) != 3 {
		t.Fatalf("contacts = %d, want 3", len(out.Contacts))
	}
	if out.Contacts[0].Start != 0 { // shifted
		t.Fatalf("window not shifted: %v", out.Contacts[0].Start)
	}
	if out.NodeCount != 5 {
		t.Fatal("window should preserve the population")
	}
	if _, err := tr.Window(10, 10); err == nil {
		t.Fatal("accepted empty window")
	}
	if _, err := tr.Window(1000, 2000); err == nil {
		t.Fatal("accepted contactless window")
	}
}

func TestMerge(t *testing.T) {
	a := &Trace{NodeCount: 3, Contacts: []Contact{{A: 0, B: 1, Start: 5, End: 5}}}
	b := &Trace{NodeCount: 3, Contacts: []Contact{{A: 1, B: 2, Start: 1, End: 1}}}
	out, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Contacts) != 2 || out.Contacts[0].Start != 1 {
		t.Fatalf("merge wrong: %+v", out.Contacts)
	}
	c := &Trace{NodeCount: 4}
	if _, err := Merge(a, c); err == nil {
		t.Fatal("merged different populations")
	}
}

func TestFilterPipelineOnSynthetic(t *testing.T) {
	// Realistic use: drop the least-connected third of an Infocom-like
	// trace's nodes and verify the result still routes.
	tr, err := GenerateInfocom(rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	// Pick a data-driven threshold: strictly above the minimum per-node
	// contact count, so at least one node is dropped and most are kept.
	counts := map[contact.NodeID]int{}
	for _, c := range tr.Contacts {
		counts[c.A]++
		counts[c.B]++
	}
	minCount := 1 << 30
	for _, c := range counts {
		if c < minCount {
			minCount = c
		}
	}
	out, err := tr.FilterNodes(tr.MinContacts(minCount + 1))
	if err != nil {
		t.Fatal(err)
	}
	if out.NodeCount == 0 || out.NodeCount >= tr.NodeCount {
		t.Fatalf("filter kept %d of %d nodes", out.NodeCount, tr.NodeCount)
	}
	if _, err := out.EstimateRates(); err != nil {
		t.Fatal(err)
	}
}

func TestKeepBusiest(t *testing.T) {
	tr := filterFixture()
	// Contact counts: node 0 -> 3, node 1 -> 3, node 2 -> 2, node 4 -> 2.
	out, err := tr.KeepBusiest(3)
	if err != nil {
		t.Fatal(err)
	}
	if out.NodeCount != 3 {
		t.Fatalf("NodeCount = %d, want 3", out.NodeCount)
	}
	// Nodes 0, 1 (busiest) and 2 (tie with 4, lower ID wins) survive;
	// only contacts among them remain.
	if len(out.Contacts) != 3 {
		t.Fatalf("contacts = %d, want 3", len(out.Contacts))
	}
	for _, c := range out.Contacts {
		if int(c.A) >= 3 || int(c.B) >= 3 {
			t.Fatalf("uncompacted node in %+v", c)
		}
	}
	// At or below the requested size: unchanged.
	same, err := out.KeepBusiest(10)
	if err != nil {
		t.Fatal(err)
	}
	if same != out {
		t.Fatal("small trace was rebuilt")
	}
	if _, err := tr.KeepBusiest(1); err == nil {
		t.Fatal("single-node trace accepted")
	}
}
