package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseReader feeds arbitrary text to the trace parser: it must
// never panic, and anything it accepts must validate and survive a
// write/parse round trip.
func FuzzParseReader(f *testing.F) {
	f.Add("1 2 0 1\n2 3 5 6\n")
	f.Add("# comment\n\n0 1 1.5 2.5\n")
	f.Add("x y z w\n")
	f.Add("1 1 0 0\n")
	f.Add("9999999 2 1e300 1e301\n")

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseReader(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("accepted trace fails validation: %v", verr)
		}
		var buf bytes.Buffer
		if _, werr := tr.WriteTo(&buf); werr != nil {
			t.Fatalf("accepted trace failed to serialize: %v", werr)
		}
		tr2, rerr := ParseReader(&buf)
		if rerr != nil {
			t.Fatalf("round trip rejected: %v", rerr)
		}
		if tr2.NodeCount != tr.NodeCount || len(tr2.Contacts) != len(tr.Contacts) {
			t.Fatal("round trip changed the trace shape")
		}
	})
}

// FuzzReadGraphViaTrace exercises the graph estimator on fuzzed
// traces.
func FuzzEstimateRates(f *testing.F) {
	f.Add("0 1 0 1\n0 1 10 11\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseReader(strings.NewReader(input))
		if err != nil {
			return
		}
		g, err := tr.EstimateRates()
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("estimated graph invalid: %v", verr)
		}
	})
}
