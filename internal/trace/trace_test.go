package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/contact"
	"repro/internal/rng"
)

func TestParseReaderBasic(t *testing.T) {
	in := `# a comment

3 7 10.5 12
7 3 20 25
3 9 5 6
`
	tr, err := ParseReader(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NodeCount != 3 {
		t.Fatalf("NodeCount = %d, want 3 (compacted)", tr.NodeCount)
	}
	if len(tr.Contacts) != 3 {
		t.Fatalf("contacts = %d", len(tr.Contacts))
	}
	// Sorted by start: 5, 10.5, 20.
	if tr.Contacts[0].Start != 5 || tr.Contacts[2].Start != 20 {
		t.Fatalf("not sorted: %+v", tr.Contacts)
	}
	// IDs compacted: 3->0, 7->1, 9->2.
	first := tr.Contacts[0]
	if first.A != 0 || first.B != 2 {
		t.Fatalf("remap wrong: %+v", first)
	}
}

func TestParseReaderErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields": "1 2 3\n",
		"bad node":       "x 2 3 4\n",
		"bad start":      "1 2 x 4\n",
		"bad end":        "1 2 3 x\n",
		"self contact":   "2 2 3 4\n",
		"negative id":    "-1 2 3 4\n",
		"end < start":    "1 2 5 4\n",
		"empty":          "# nothing\n",
	}
	for name, in := range cases {
		if _, err := ParseReader(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	tr := &Trace{NodeCount: 4, Contacts: []Contact{
		{A: 0, B: 1, Start: 1, End: 2},
		{A: 2, B: 3, Start: 3.5, End: 3.5},
		{A: 1, B: 3, Start: 10, End: 12.25},
	}}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NodeCount != 4 || len(got.Contacts) != 3 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range tr.Contacts {
		if got.Contacts[i] != tr.Contacts[i] {
			t.Fatalf("contact %d: got %+v want %+v", i, got.Contacts[i], tr.Contacts[i])
		}
	}
}

func TestValidateCatchesDisorder(t *testing.T) {
	tr := &Trace{NodeCount: 3, Contacts: []Contact{
		{A: 0, B: 1, Start: 5, End: 6},
		{A: 0, B: 2, Start: 1, End: 2},
	}}
	if err := tr.Validate(); err == nil {
		t.Fatal("unsorted trace validated")
	}
	tr.SortByStart()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRanges(t *testing.T) {
	bad := []*Trace{
		{NodeCount: 0},
		{NodeCount: 2, Contacts: []Contact{{A: 0, B: 5, Start: 1, End: 2}}},
		{NodeCount: 2, Contacts: []Contact{{A: 0, B: 0, Start: 1, End: 2}}},
		{NodeCount: 2, Contacts: []Contact{{A: 0, B: 1, Start: -1, End: 2}}},
		{NodeCount: 2, Contacts: []Contact{{A: 0, B: 1, Start: 3, End: 2}}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestEstimateRates(t *testing.T) {
	tr := &Trace{NodeCount: 3, Contacts: []Contact{
		{A: 0, B: 1, Start: 0, End: 0},
		{A: 0, B: 1, Start: 50, End: 50},
		{A: 1, B: 0, Start: 75, End: 75}, // reversed order, same pair
		{A: 1, B: 2, Start: 100, End: 100},
	}}
	g, err := tr.EstimateRates()
	if err != nil {
		t.Fatal(err)
	}
	// Duration = 100 s; pair (0,1) met 3 times -> 0.03; (1,2) once -> 0.01.
	if math.Abs(g.Rate(0, 1)-0.03) > 1e-12 {
		t.Fatalf("rate(0,1) = %v", g.Rate(0, 1))
	}
	if math.Abs(g.Rate(1, 2)-0.01) > 1e-12 {
		t.Fatalf("rate(1,2) = %v", g.Rate(1, 2))
	}
	if g.Rate(0, 2) != 0 {
		t.Fatalf("rate(0,2) = %v, want 0", g.Rate(0, 2))
	}
}

func TestEstimateRatesZeroDuration(t *testing.T) {
	tr := &Trace{NodeCount: 2, Contacts: []Contact{{A: 0, B: 1, Start: 0, End: 0}}}
	if _, err := tr.EstimateRates(); err == nil {
		t.Fatal("expected error for zero-duration trace")
	}
}

func TestSummarize(t *testing.T) {
	tr := &Trace{NodeCount: 4, Contacts: []Contact{
		{A: 0, B: 1, Start: 0, End: 0},
		{A: 0, B: 1, Start: 10, End: 10},
		{A: 2, B: 3, Start: 20, End: 20},
	}}
	st := tr.Summarize()
	if st.Nodes != 4 || st.Contacts != 3 || st.ActivePairs != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if math.Abs(st.PairDensity-2.0/6.0) > 1e-12 {
		t.Fatalf("density = %v", st.PairDensity)
	}
	if math.Abs(st.ContactsPerPair-1.5) > 1e-12 {
		t.Fatalf("contacts/pair = %v", st.ContactsPerPair)
	}
}

func TestContactsOf(t *testing.T) {
	tr := &Trace{NodeCount: 3, Contacts: []Contact{
		{A: 0, B: 1, Start: 0, End: 0},
		{A: 1, B: 2, Start: 1, End: 1},
		{A: 0, B: 2, Start: 2, End: 2},
	}}
	got := tr.ContactsOf(1)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("ContactsOf(1) = %v", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := GenerateCambridge(rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCambridge(rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Contacts) != len(b.Contacts) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Contacts), len(b.Contacts))
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}

func TestGenerateCambridgeShape(t *testing.T) {
	tr, err := GenerateCambridge(rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tr.Summarize()
	if st.Nodes != 12 {
		t.Fatalf("nodes = %d, want 12", st.Nodes)
	}
	if st.PairDensity != 1 {
		t.Fatalf("Cambridge should be fully dense, got %v", st.PairDensity)
	}
	// Multi-day span.
	if tr.Duration() < 4*24*3600 {
		t.Fatalf("duration %v too short for 5 days", tr.Duration())
	}
	// Dense: each active pair meets many times.
	if st.ContactsPerPair < 50 {
		t.Fatalf("contacts per pair %v too sparse for Cambridge", st.ContactsPerPair)
	}
}

func TestGenerateInfocomShape(t *testing.T) {
	tr, err := GenerateInfocom(rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tr.Summarize()
	if st.Nodes != 41 {
		t.Fatalf("nodes = %d, want 41", st.Nodes)
	}
	if st.PairDensity >= 1 || st.PairDensity < 0.3 {
		t.Fatalf("Infocom density %v outside medium band", st.PairDensity)
	}
}

func TestGenerateRespectsDiurnalWindows(t *testing.T) {
	cfg := CambridgeConfig()
	tr, err := Generate(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	const daySec = 24 * 3600.0
	for _, c := range tr.Contacts {
		hour := math.Mod(c.Start, daySec) / 3600
		if hour < cfg.DayStartHour || hour > cfg.DayEndHour {
			t.Fatalf("contact at hour %v outside [%v,%v]", hour, cfg.DayStartHour, cfg.DayEndHour)
		}
	}
}

func TestGenerateInfocomHasSilentGaps(t *testing.T) {
	// The session/break structure must leave long silent periods inside
	// the day — the cause of the Fig. 17 plateau.
	tr, err := GenerateInfocom(rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := InfocomConfig()
	var maxGapInDay float64
	for i := 1; i < len(tr.Contacts); i++ {
		gap := tr.Contacts[i].Start - tr.Contacts[i-1].Start
		// Only gaps within the same day's activity window count.
		const daySec = 24 * 3600.0
		if math.Floor(tr.Contacts[i].Start/daySec) == math.Floor(tr.Contacts[i-1].Start/daySec) {
			maxGapInDay = math.Max(maxGapInDay, gap)
		}
	}
	if maxGapInDay < cfg.BreakMinutes*60*0.8 {
		t.Fatalf("max intra-day gap %v s, want silent breaks of ~%v s", maxGapInDay, cfg.BreakMinutes*60)
	}
}

func TestGenerateValidatesConfig(t *testing.T) {
	bad := []DiurnalConfig{
		{},
		{Nodes: 1, Days: 1, DayStartHour: 9, DayEndHour: 17, SessionMinutes: 60, MeanICT: 100, PairProb: 1},
		{Nodes: 5, Days: 0, DayStartHour: 9, DayEndHour: 17, SessionMinutes: 60, MeanICT: 100, PairProb: 1},
		{Nodes: 5, Days: 1, DayStartHour: 17, DayEndHour: 9, SessionMinutes: 60, MeanICT: 100, PairProb: 1},
		{Nodes: 5, Days: 1, DayStartHour: 9, DayEndHour: 17, SessionMinutes: 0, MeanICT: 100, PairProb: 1},
		{Nodes: 5, Days: 1, DayStartHour: 9, DayEndHour: 17, SessionMinutes: 60, MeanICT: 0, PairProb: 1},
		{Nodes: 5, Days: 1, DayStartHour: 9, DayEndHour: 17, SessionMinutes: 60, MeanICT: 100, PairProb: 0},
		{Nodes: 5, Days: 1, DayStartHour: 9, DayEndHour: 17, SessionMinutes: 60, MeanICT: 100, PairProb: 1.5},
		{Nodes: 5, Days: 1, DayStartHour: 9, DayEndHour: 17, SessionMinutes: 60, BreakMinutes: -1, MeanICT: 100, PairProb: 1},
		{Nodes: 5, Days: 1, DayStartHour: 9, DayEndHour: 17, SessionMinutes: 60, MeanICT: 100, ContactSeconds: -1, PairProb: 1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg, rng.New(1)); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestEstimateRatesFromGeneratedTrace(t *testing.T) {
	tr, err := GenerateCambridge(rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	g, err := tr.EstimateRates()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("graph nodes = %d", g.N())
	}
	// Dense trace: every pair has positive estimated rate.
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			if g.Rate(contact.NodeID(i), contact.NodeID(j)) <= 0 {
				t.Fatalf("pair (%d,%d) has zero estimated rate", i, j)
			}
		}
	}
}

func BenchmarkGenerateCambridge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = GenerateCambridge(rng.New(uint64(i)))
	}
}

func BenchmarkParse(b *testing.B) {
	tr, err := GenerateCambridge(rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseReader(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
