package trace

import (
	"fmt"
	"sort"

	"repro/internal/contact"
)

// Preprocessing utilities mirroring what the paper does to the raw
// CRAWDAD files: "we only consider the contacts between mobile
// devices, i.e., iMotes, by excluding stationary nodes and external
// devices" (Sec. V-A). Real haggle dumps include fixed base stations
// and one-off external sightings; FilterNodes and Window carve out the
// mobile sub-trace the experiments run on.

// FilterNodes returns a new trace containing only contacts whose both
// endpoints satisfy keep. Node IDs are re-compacted to [0, NodeCount).
func (t *Trace) FilterNodes(keep func(contact.NodeID) bool) (*Trace, error) {
	if keep == nil {
		return nil, fmt.Errorf("trace: nil keep predicate")
	}
	remap := make(map[contact.NodeID]contact.NodeID)
	next := contact.NodeID(0)
	mapped := func(v contact.NodeID) contact.NodeID {
		id, ok := remap[v]
		if !ok {
			id = next
			remap[v] = id
			next++
		}
		return id
	}
	out := &Trace{}
	for _, c := range t.Contacts {
		if !keep(c.A) || !keep(c.B) {
			continue
		}
		out.Contacts = append(out.Contacts, Contact{
			A: mapped(c.A), B: mapped(c.B), Start: c.Start, End: c.End,
		})
	}
	if len(out.Contacts) == 0 {
		return nil, fmt.Errorf("trace: filter removed every contact")
	}
	out.NodeCount = int(next)
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// MinContacts returns a predicate keeping only nodes that appear in at
// least min contacts — the standard way to drop external devices that
// were sighted a handful of times.
func (t *Trace) MinContacts(min int) func(contact.NodeID) bool {
	counts := make(map[contact.NodeID]int, t.NodeCount)
	for _, c := range t.Contacts {
		counts[c.A]++
		counts[c.B]++
	}
	return func(v contact.NodeID) bool { return counts[v] >= min }
}

// KeepBusiest keeps the n most active nodes (by contact count, ties
// broken by lower ID) and compacts IDs to [0, n) — how a small cluster
// replays a campus-scale trace. A trace already at or below n nodes is
// returned unchanged.
func (t *Trace) KeepBusiest(n int) (*Trace, error) {
	if n < 2 {
		return nil, fmt.Errorf("trace: keeping %d nodes leaves no contacts", n)
	}
	if t.NodeCount <= n {
		return t, nil
	}
	counts := make([]int, t.NodeCount)
	for _, c := range t.Contacts {
		counts[c.A]++
		counts[c.B]++
	}
	order := make([]int, t.NodeCount)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if counts[order[i]] != counts[order[j]] {
			return counts[order[i]] > counts[order[j]]
		}
		return order[i] < order[j]
	})
	keep := make(map[contact.NodeID]bool, n)
	for _, v := range order[:n] {
		keep[contact.NodeID(v)] = true
	}
	return t.FilterNodes(func(v contact.NodeID) bool { return keep[v] })
}

// Window returns a new trace restricted to contacts starting in
// [from, to), with times shifted so the window starts at zero. Node
// IDs are preserved (not compacted): the population is unchanged.
func (t *Trace) Window(from, to float64) (*Trace, error) {
	if to <= from {
		return nil, fmt.Errorf("trace: empty window [%v, %v)", from, to)
	}
	out := &Trace{NodeCount: t.NodeCount}
	for _, c := range t.Contacts {
		if c.Start < from || c.Start >= to {
			continue
		}
		out.Contacts = append(out.Contacts, Contact{
			A: c.A, B: c.B, Start: c.Start - from, End: c.End - from,
		})
	}
	if len(out.Contacts) == 0 {
		return nil, fmt.Errorf("trace: no contacts in window [%v, %v)", from, to)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Merge combines two traces over the same population into one
// chronologically sorted trace.
func Merge(a, b *Trace) (*Trace, error) {
	if a.NodeCount != b.NodeCount {
		return nil, fmt.Errorf("trace: merging populations of %d and %d nodes", a.NodeCount, b.NodeCount)
	}
	out := &Trace{NodeCount: a.NodeCount}
	out.Contacts = append(out.Contacts, a.Contacts...)
	out.Contacts = append(out.Contacts, b.Contacts...)
	out.SortByStart()
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
