// Package trace provides the contact-trace substrate for the paper's
// real-trace evaluation (Sec. V-D, V-E).
//
// The paper replays the CRAWDAD cambridge/haggle traces (Cambridge =
// Experiment 2, 12 iMotes; Infocom 2005 = Experiment 3, 41 iMotes).
// Those files require a CRAWDAD account, so this package implements two
// things:
//
//  1. a parser/writer for the contact-trace exchange format (one
//     contact per line: "nodeA nodeB start end" in seconds), so real
//     trace files can be used when available, and
//  2. synthetic generators (GenerateCambridge, GenerateInfocom) that
//     reproduce the documented properties the paper's conclusions rest
//     on: node counts, contact density, second-granularity timestamps,
//     multi-day spans, and the business-hour/off-hour diurnal structure
//     that causes the Infocom delivery-rate plateau (Fig. 17).
//
// Times in this package are in seconds (the unit of Figs. 14 and 17).
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/contact"
)

// Contact is a single recorded meeting between two nodes.
type Contact struct {
	A, B  contact.NodeID
	Start float64 // seconds since trace start
	End   float64 // seconds; End >= Start
}

// Trace is an ordered sequence of contacts over a fixed node
// population.
type Trace struct {
	NodeCount int
	Contacts  []Contact // sorted by Start
}

// Validate checks node ranges, time sanity, and ordering.
func (t *Trace) Validate() error {
	if t.NodeCount <= 0 {
		return errors.New("trace: node count must be positive")
	}
	prev := 0.0
	for i, c := range t.Contacts {
		if c.A < 0 || int(c.A) >= t.NodeCount || c.B < 0 || int(c.B) >= t.NodeCount {
			return fmt.Errorf("trace: contact %d references node out of [0,%d)", i, t.NodeCount)
		}
		if c.A == c.B {
			return fmt.Errorf("trace: contact %d is a self-contact", i)
		}
		if c.Start < 0 || c.End < c.Start {
			return fmt.Errorf("trace: contact %d has invalid interval [%v,%v]", i, c.Start, c.End)
		}
		if c.Start < prev {
			return fmt.Errorf("trace: contact %d out of order (%v after %v)", i, c.Start, prev)
		}
		prev = c.Start
	}
	return nil
}

// Duration returns the time of the last contact start, i.e. the usable
// span of the trace.
func (t *Trace) Duration() float64 {
	if len(t.Contacts) == 0 {
		return 0
	}
	return t.Contacts[len(t.Contacts)-1].Start
}

// SortByStart sorts contacts chronologically (stable).
func (t *Trace) SortByStart() {
	sort.SliceStable(t.Contacts, func(i, j int) bool {
		return t.Contacts[i].Start < t.Contacts[j].Start
	})
}

// ParseReader reads a trace in the exchange format: one contact per
// line, "nodeA nodeB start end" (whitespace separated, seconds), with
// '#' comments and blank lines ignored. Node IDs may be arbitrary
// non-negative integers; they are compacted to [0, NodeCount).
func ParseReader(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var raw []struct {
		a, b       int
		start, end float64
	}
	ids := map[int]bool{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		a, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad node id %q: %w", lineNo, fields[0], err)
		}
		b, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad node id %q: %w", lineNo, fields[1], err)
		}
		start, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad start time %q: %w", lineNo, fields[2], err)
		}
		end, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad end time %q: %w", lineNo, fields[3], err)
		}
		if a < 0 || b < 0 {
			return nil, fmt.Errorf("trace: line %d: negative node id", lineNo)
		}
		if a == b {
			return nil, fmt.Errorf("trace: line %d: self-contact", lineNo)
		}
		if math.IsNaN(start) || math.IsInf(start, 0) || math.IsNaN(end) || math.IsInf(end, 0) {
			return nil, fmt.Errorf("trace: line %d: non-finite contact interval [%v,%v]", lineNo, start, end)
		}
		if end < start {
			return nil, fmt.Errorf("trace: line %d: end %v before start %v", lineNo, end, start)
		}
		ids[a], ids[b] = true, true
		raw = append(raw, struct {
			a, b       int
			start, end float64
		}{a, b, start, end})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if len(raw) == 0 {
		return nil, errors.New("trace: no contacts")
	}
	// Compact node IDs.
	sortedIDs := make([]int, 0, len(ids))
	for id := range ids {
		sortedIDs = append(sortedIDs, id)
	}
	sort.Ints(sortedIDs)
	remap := make(map[int]contact.NodeID, len(sortedIDs))
	for i, id := range sortedIDs {
		remap[id] = contact.NodeID(i)
	}
	tr := &Trace{NodeCount: len(sortedIDs), Contacts: make([]Contact, 0, len(raw))}
	for _, c := range raw {
		tr.Contacts = append(tr.Contacts, Contact{A: remap[c.a], B: remap[c.b], Start: c.start, End: c.end})
	}
	tr.SortByStart()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// WriteTo writes the trace in the exchange format.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	written, err := fmt.Fprintf(bw, "# contact trace: %d nodes, %d contacts\n", t.NodeCount, len(t.Contacts))
	n += int64(written)
	if err != nil {
		return n, fmt.Errorf("trace: write header: %w", err)
	}
	for _, c := range t.Contacts {
		written, err = fmt.Fprintf(bw, "%d %d %s %s\n", c.A, c.B,
			strconv.FormatFloat(c.Start, 'f', -1, 64),
			strconv.FormatFloat(c.End, 'f', -1, 64))
		n += int64(written)
		if err != nil {
			return n, fmt.Errorf("trace: write contact: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("trace: flush: %w", err)
	}
	return n, nil
}

// EstimateRates fits the paper's exponential inter-contact model to the
// trace: lambda_{i,j} = (number of (i,j) contacts) / (trace duration).
// Rates are what the analytical models consume ("by training the
// traces, the accuracy of the proposed models can be improved",
// Sec. V-A).
func (t *Trace) EstimateRates() (*contact.Graph, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	d := t.Duration()
	if d <= 0 {
		return nil, errors.New("trace: zero duration, cannot estimate rates")
	}
	g, err := contact.New(t.NodeCount)
	if err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	}
	counts := make(map[[2]contact.NodeID]int)
	for _, c := range t.Contacts {
		a, b := c.A, c.B
		if a > b {
			a, b = b, a
		}
		counts[[2]contact.NodeID{a, b}]++
	}
	for pair, cnt := range counts {
		g.SetRate(pair[0], pair[1], float64(cnt)/d)
	}
	return g, nil
}

// Stats summarizes a trace.
type Stats struct {
	Nodes           int
	Contacts        int
	Duration        float64 // seconds
	ActivePairs     int     // pairs that meet at least once
	PairDensity     float64 // active pairs / all pairs
	ContactsPerPair float64 // mean contacts among active pairs
}

// Summarize computes trace statistics.
func (t *Trace) Summarize() Stats {
	pairs := map[[2]contact.NodeID]int{}
	for _, c := range t.Contacts {
		a, b := c.A, c.B
		if a > b {
			a, b = b, a
		}
		pairs[[2]contact.NodeID{a, b}]++
	}
	all := t.NodeCount * (t.NodeCount - 1) / 2
	st := Stats{
		Nodes:       t.NodeCount,
		Contacts:    len(t.Contacts),
		Duration:    t.Duration(),
		ActivePairs: len(pairs),
	}
	if all > 0 {
		st.PairDensity = float64(len(pairs)) / float64(all)
	}
	if len(pairs) > 0 {
		st.ContactsPerPair = float64(len(t.Contacts)) / float64(len(pairs))
	}
	return st
}

// ContactsOf returns the indices into t.Contacts that involve node v,
// in chronological order.
func (t *Trace) ContactsOf(v contact.NodeID) []int {
	var out []int
	for i, c := range t.Contacts {
		if c.A == v || c.B == v {
			out = append(out, i)
		}
	}
	return out
}
