package sim

import (
	"math"
	"testing"

	"repro/internal/contact"
	"repro/internal/rng"
	"repro/internal/trace"
)

// recorder captures delivered contacts.
type recorder struct {
	times []float64
	pairs [][2]contact.NodeID
	stop  int // Done() becomes true after this many contacts (0 = never)
}

func (r *recorder) OnContact(t float64, a, b contact.NodeID) {
	r.times = append(r.times, t)
	r.pairs = append(r.pairs, [2]contact.NodeID{a, b})
}

func (r *recorder) Done() bool { return r.stop > 0 && len(r.times) >= r.stop }

func TestRunSyntheticOrdering(t *testing.T) {
	g := contact.NewRandom(10, 1, 50, rng.New(1))
	rec := &recorder{}
	n := RunSynthetic(g, 200, rng.New(2), rec)
	if n != len(rec.times) {
		t.Fatalf("returned %d, recorded %d", n, len(rec.times))
	}
	if n == 0 {
		t.Fatal("no contacts generated")
	}
	for i := 1; i < len(rec.times); i++ {
		if rec.times[i] < rec.times[i-1] {
			t.Fatalf("contacts out of order at %d", i)
		}
	}
	for _, tt := range rec.times {
		if tt < 0 || tt > 200 {
			t.Fatalf("contact at %v outside horizon", tt)
		}
	}
}

func TestRunSyntheticPoissonCount(t *testing.T) {
	// A single pair with rate lambda produces ~lambda*T contacts.
	g := contact.NewGraph(2)
	g.SetRate(0, 1, 0.5)
	var total int
	const reps = 200
	const horizon = 100.0
	for i := 0; i < reps; i++ {
		rec := &recorder{}
		total += RunSynthetic(g, horizon, rng.New(uint64(i)), rec)
	}
	mean := float64(total) / reps
	want := 0.5 * horizon
	if math.Abs(mean-want) > 0.05*want {
		t.Fatalf("mean contacts %v, want ~%v", mean, want)
	}
}

func TestRunSyntheticRespectsRates(t *testing.T) {
	// A pair with twice the rate should meet ~twice as often.
	g := contact.NewGraph(3)
	g.SetRate(0, 1, 0.2)
	g.SetRate(0, 2, 0.4)
	counts := map[[2]contact.NodeID]int{}
	for i := 0; i < 100; i++ {
		rec := &recorder{}
		RunSynthetic(g, 500, rng.New(uint64(i)), rec)
		for _, p := range rec.pairs {
			counts[p]++
		}
	}
	ratio := float64(counts[[2]contact.NodeID{0, 2}]) / float64(counts[[2]contact.NodeID{0, 1}])
	if math.Abs(ratio-2) > 0.2 {
		t.Fatalf("rate ratio %v, want ~2", ratio)
	}
}

func TestRunSyntheticEarlyExit(t *testing.T) {
	g := contact.NewRandom(10, 1, 10, rng.New(3))
	rec := &recorder{stop: 5}
	n := RunSynthetic(g, 1000, rng.New(4), rec)
	if n != 5 {
		t.Fatalf("dispatched %d contacts after Done, want 5", n)
	}
}

func TestRunSyntheticZeroHorizon(t *testing.T) {
	g := contact.NewRandom(5, 1, 10, rng.New(1))
	if n := RunSynthetic(g, 0, rng.New(1), &recorder{}); n != 0 {
		t.Fatalf("events at zero horizon: %d", n)
	}
}

func TestRunSyntheticDeterministic(t *testing.T) {
	g := contact.NewRandom(8, 1, 30, rng.New(5))
	a, b := &recorder{}, &recorder{}
	RunSynthetic(g, 100, rng.New(6), a)
	RunSynthetic(g, 100, rng.New(6), b)
	if len(a.times) != len(b.times) {
		t.Fatal("same seed produced different contact counts")
	}
	for i := range a.times {
		if a.times[i] != b.times[i] || a.pairs[i] != b.pairs[i] {
			t.Fatal("same seed produced different contacts")
		}
	}
}

func TestReplayWindow(t *testing.T) {
	tr := &trace.Trace{NodeCount: 4, Contacts: []trace.Contact{
		{A: 0, B: 1, Start: 10, End: 10},
		{A: 1, B: 2, Start: 20, End: 20},
		{A: 2, B: 3, Start: 30, End: 30},
		{A: 0, B: 3, Start: 40, End: 40},
	}}
	rec := &recorder{}
	n := Replay(tr, 15, 20, rec) // window [15, 35]
	if n != 2 {
		t.Fatalf("replayed %d contacts, want 2", n)
	}
	if rec.times[0] != 20 || rec.times[1] != 30 {
		t.Fatalf("times = %v", rec.times)
	}
}

func TestReplayEarlyExit(t *testing.T) {
	tr := &trace.Trace{NodeCount: 2, Contacts: []trace.Contact{
		{A: 0, B: 1, Start: 1, End: 1},
		{A: 0, B: 1, Start: 2, End: 2},
		{A: 0, B: 1, Start: 3, End: 3},
	}}
	rec := &recorder{stop: 1}
	if n := Replay(tr, 0, 100, rec); n != 1 {
		t.Fatalf("replayed %d, want 1", n)
	}
}

func TestReplayZeroHorizon(t *testing.T) {
	tr := &trace.Trace{NodeCount: 2, Contacts: []trace.Contact{{A: 0, B: 1, Start: 1, End: 1}}}
	if n := Replay(tr, 0, 0, &recorder{}); n != 0 {
		t.Fatal("replayed contacts with zero horizon")
	}
}

func TestCountContacts(t *testing.T) {
	g := contact.NewGraph(2)
	g.SetRate(0, 1, 1)
	n := CountContacts(g, 50, rng.New(9))
	if n < 20 || n > 90 {
		t.Fatalf("contact count %d wildly off mean 50", n)
	}
}

func TestValidate(t *testing.T) {
	g := contact.NewRandom(5, 1, 10, rng.New(1))
	if err := Validate(g, 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, 2, 2); err == nil {
		t.Fatal("accepted src == dst")
	}
	if err := Validate(g, 0, 9); err == nil {
		t.Fatal("accepted out-of-range node")
	}
}

func BenchmarkRunSynthetic100Nodes(b *testing.B) {
	g := contact.NewRandom(100, 1, 360, rng.New(1))
	s := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunSynthetic(g, 1800, s, nopProtocol{})
	}
}

func TestFanoutFeedsAllUntilEachDone(t *testing.T) {
	a := &recorder{stop: 2}
	b := &recorder{stop: 5}
	f := Fanout{a, b}
	g := contact.NewRandom(6, 1, 5, rng.New(31))
	RunSynthetic(g, 1000, rng.New(32), f)
	if len(a.times) != 2 {
		t.Fatalf("a saw %d contacts, want 2 (stopped early)", len(a.times))
	}
	if len(b.times) != 5 {
		t.Fatalf("b saw %d contacts, want 5", len(b.times))
	}
	// Both saw the same prefix of the identical stream.
	for i := range a.times {
		if a.times[i] != b.times[i] || a.pairs[i] != b.pairs[i] {
			t.Fatal("fanout streams diverged")
		}
	}
	if !f.Done() {
		t.Fatal("fanout not done when all constituents are")
	}
}

func TestFanoutEmptyIsDone(t *testing.T) {
	if !(Fanout{}).Done() {
		t.Fatal("empty fanout should be done")
	}
}
