// Package sim provides the DTN contact simulators: a synthetic engine
// that realizes the paper's network model (pairwise exponential
// inter-contact processes over a contact graph, Sec. III-A) and a
// replay engine for recorded contact traces (Sec. V-D/E). Both feed
// time-ordered contact events to a routing protocol.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/contact"
	"repro/internal/des"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Protocol is a routing protocol driven by contact events. Protocols
// in package routing implement it structurally.
type Protocol interface {
	// OnContact handles a meeting of nodes a and b at time t. Both
	// forwarding directions may be exercised.
	OnContact(t float64, a, b contact.NodeID)
	// Done reports whether the protocol needs no further contacts
	// (e.g. the message has been delivered), allowing early exit.
	Done() bool
}

// RunSynthetic simulates the contact graph for [0, horizon]: every pair
// (i, j) with rate lambda_{i,j} > 0 meets at the points of a Poisson
// process with that rate (exponential inter-contact times, Eq. 2).
// Contacts are delivered to p in time order until the horizon passes or
// p.Done() reports true. It returns the number of contacts delivered.
//
// The engine is the des calendar-queue scheduler: each pair owns one
// self-rescheduling event, so the pending-event set stays at O(active
// pairs) and the RNG draw order (initial draws in Pairs order, then one
// reschedule draw per delivered contact) is identical to the original
// pair-heap implementation — existing artifacts reproduce byte for
// byte.
func RunSynthetic(g *contact.Graph, horizon float64, s *rng.Stream, p Protocol) int {
	if horizon <= 0 {
		return 0
	}
	sch := des.New()
	events := 0
	g.Pairs(func(i, j contact.NodeID, rate float64) {
		var fire func()
		fire = func() {
			if p.Done() {
				sch.Stop()
				return
			}
			p.OnContact(sch.Now(), i, j)
			events++
			if next := sch.Now() + s.Exp(rate); next <= horizon {
				sch.At(next, fire)
			}
		}
		if t := s.Exp(rate); t <= horizon {
			sch.At(t, fire)
		}
	})
	sch.Run()
	if c := obs.Active(); c != nil {
		c.Add(obs.SimSyntheticContacts, int64(events))
	}
	return events
}

// Replay feeds the trace contacts whose start times fall in
// [from, from+horizon] to p in order, stopping early when p.Done().
// Contact times are passed through unchanged (absolute trace time);
// callers measure delays relative to `from`. It returns the number of
// contacts delivered.
func Replay(tr *trace.Trace, from, horizon float64, p Protocol) int {
	if horizon <= 0 {
		return 0
	}
	end := from + horizon
	idx := sort.Search(len(tr.Contacts), func(i int) bool {
		return tr.Contacts[i].Start >= from
	})
	events := 0
	for ; idx < len(tr.Contacts); idx++ {
		c := tr.Contacts[idx]
		if c.Start > end {
			break
		}
		if p.Done() {
			break
		}
		p.OnContact(c.Start, c.A, c.B)
		events++
	}
	if c := obs.Active(); c != nil {
		c.Add(obs.SimReplayContacts, int64(events))
	}
	return events
}

// CountContacts returns how many synthetic contacts would occur in
// [0, horizon]; useful for workload sizing in tests and benchmarks.
func CountContacts(g *contact.Graph, horizon float64, s *rng.Stream) int {
	return RunSynthetic(g, horizon, s, nopProtocol{})
}

type nopProtocol struct{}

func (nopProtocol) OnContact(float64, contact.NodeID, contact.NodeID) {}
func (nopProtocol) Done() bool                                        { return false }

var _ Protocol = nopProtocol{}

// Validate sanity-checks engine inputs shared by experiment code.
func Validate(g *contact.Graph, src, dst contact.NodeID) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if src == dst {
		return fmt.Errorf("sim: source and destination are both node %d", src)
	}
	if src < 0 || int(src) >= g.N() || dst < 0 || int(dst) >= g.N() {
		return fmt.Errorf("sim: endpoints (%d, %d) out of range [0, %d)", src, dst, g.N())
	}
	return nil
}

// Fanout feeds one contact stream to several protocols simultaneously,
// so competing protocols are compared on the IDENTICAL contact
// realization (paired comparison, removing realization variance).
// Done reports true only when every constituent is done.
type Fanout []Protocol

// OnContact implements Protocol.
func (f Fanout) OnContact(t float64, a, b contact.NodeID) {
	for _, p := range f {
		if !p.Done() {
			p.OnContact(t, a, b)
		}
	}
}

// Done implements Protocol.
func (f Fanout) Done() bool {
	for _, p := range f {
		if !p.Done() {
			return false
		}
	}
	return true
}

// Lossy wraps a protocol with a per-contact failure probability: each
// contact event independently fails (is dropped before the inner
// protocol sees it) with probability prob, drawn from the given
// stream. This is the DES-harness face of the fault layer — a failed
// contact models a meeting too short or too disturbed to complete any
// hand-off. By Poisson thinning, dropping each contact of a rate-λ
// pair process with probability p yields a Poisson process of rate
// λ(1−p), which is how the closed-form model and the direct sampler
// account for the same fault rate.
//
// prob <= 0 returns the inner protocol unchanged (and consumes no
// stream state), so the zero-fault configuration is byte-identical to
// an unwrapped run.
func Lossy(inner Protocol, prob float64, s *rng.Stream) Protocol {
	if prob <= 0 {
		return inner
	}
	if prob > 1 {
		prob = 1
	}
	return &lossy{inner: inner, prob: prob, s: s}
}

type lossy struct {
	inner Protocol
	prob  float64
	s     *rng.Stream
}

// OnContact implements Protocol, dropping the contact on a failure
// draw. One Bernoulli draw is consumed per contact delivered to the
// wrapper, regardless of outcome, so schedules reproduce.
func (l *lossy) OnContact(t float64, a, b contact.NodeID) {
	if l.s.Bernoulli(l.prob) {
		if c := obs.Active(); c != nil {
			c.Add(obs.SimContactsDropped, 1)
		}
		return
	}
	l.inner.OnContact(t, a, b)
}

// Done implements Protocol.
func (l *lossy) Done() bool { return l.inner.Done() }
