package sim

import (
	"reflect"
	"testing"

	"repro/internal/contact"
	"repro/internal/rng"
)

type lossRecorder struct {
	times []float64
	done  bool
}

func (r *lossRecorder) OnContact(t float64, a, b contact.NodeID) { r.times = append(r.times, t) }
func (r *lossRecorder) Done() bool                               { return r.done }

func TestLossyZeroProbIsIdentity(t *testing.T) {
	r := &lossRecorder{}
	if got := Lossy(r, 0, rng.New(1)); got != Protocol(r) {
		t.Fatal("Lossy(p=0) wrapped the protocol")
	}
	if got := Lossy(r, -0.5, rng.New(1)); got != Protocol(r) {
		t.Fatal("Lossy(p<0) wrapped the protocol")
	}
}

func TestLossyDropsAllAtOne(t *testing.T) {
	r := &lossRecorder{}
	g := contact.NewRandom(5, 1, 2, rng.New(11))
	n := RunSynthetic(g, 50, rng.New(2), Lossy(r, 1, rng.New(3)))
	if n == 0 {
		t.Fatal("no contacts generated")
	}
	if len(r.times) != 0 {
		t.Fatalf("inner protocol saw %d contacts at failure probability 1", len(r.times))
	}
}

func TestLossyThinsContacts(t *testing.T) {
	full := &lossRecorder{}
	g := contact.NewRandom(5, 1, 2, rng.New(11))
	total := RunSynthetic(g, 200, rng.New(2), full)

	thin := &lossRecorder{}
	RunSynthetic(g, 200, rng.New(2), Lossy(thin, 0.5, rng.New(3)))
	if len(thin.times) == 0 || len(thin.times) >= total {
		t.Fatalf("thinned %d of %d contacts, want a strict nonempty subset", len(thin.times), total)
	}
	frac := float64(len(thin.times)) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("survival fraction %.3f, want ~0.5 over %d contacts", frac, total)
	}
	// Surviving contacts are a subsequence of the full realization:
	// loss never reorders or retimes events.
	i := 0
	for _, ct := range thin.times {
		for i < len(full.times) && full.times[i] != ct {
			i++
		}
		if i == len(full.times) {
			t.Fatalf("thinned contact at t=%v not present in the full realization", ct)
		}
		i++
	}
}

func TestLossyDeterministic(t *testing.T) {
	run := func() []float64 {
		r := &lossRecorder{}
		g := contact.NewRandom(4, 1, 2, rng.New(12))
		RunSynthetic(g, 100, rng.New(5), Lossy(r, 0.3, rng.New(6)))
		return r.times
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("lossy schedule not reproducible for a fixed seed")
	}
}

func TestLossyDone(t *testing.T) {
	r := &lossRecorder{}
	l := Lossy(r, 0.5, rng.New(1))
	if l.Done() {
		t.Fatal("Done() = true before inner is done")
	}
	r.done = true
	if !l.Done() {
		t.Fatal("Done() = false after inner is done")
	}
}
