package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// leftovers returns every name in dir other than the expected final
// artifacts — any temp file a failed write forgot to clean up.
func leftovers(t *testing.T, dir string, want map[string]bool) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var extra []string
	for _, e := range entries {
		if !want[e.Name()] {
			extra = append(extra, e.Name())
		}
	}
	return extra
}

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := WriteFile(path, []byte("v1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("v2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v2\n" {
		t.Fatalf("content = %q, want v2", data)
	}
	if extra := leftovers(t, dir, map[string]bool{"out.csv": true}); len(extra) > 0 {
		t.Fatalf("temp droppings left behind: %v", extra)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Fatalf("perm = %v, want 0644", info.Mode().Perm())
	}
}

func TestFailedWriteLeavesNoArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	boom := errors.New("mid-write failure")
	err := WriteTo(path, 0o644, func(w io.Writer) error {
		if _, err := io.WriteString(w, "partial,row\n"); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped mid-write failure", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("artifact exists after failed write: %v", err)
	}
	if extra := leftovers(t, dir, nil); len(extra) > 0 {
		t.Fatalf("temp droppings left behind: %v", extra)
	}
}

func TestFailedWritePreservesPreviousArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := WriteFile(path, []byte("good\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := WriteTo(path, 0o644, func(w io.Writer) error {
		io.WriteString(w, "half")
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("want error")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "good\n" {
		t.Fatalf("previous artifact clobbered: %q", data)
	}
}

func TestRenameFailureCleansUp(t *testing.T) {
	dir := t.TempDir()
	// A directory occupying the destination path makes rename fail after
	// a fully successful write.
	path := filepath.Join(dir, "out.csv")
	if err := os.Mkdir(path, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("data"), 0o644); err == nil {
		t.Fatal("want rename error")
	}
	if extra := leftovers(t, dir, map[string]bool{"out.csv": true}); len(extra) > 0 {
		t.Fatalf("temp droppings left behind: %v", extra)
	}
}

func TestMissingDirectoryFailsWithoutArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope", "out.csv")
	if err := WriteFile(path, []byte("data"), 0o644); err == nil {
		t.Fatal("want error for missing directory")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("artifact appeared in missing directory")
	}
}

func TestEnsureDir(t *testing.T) {
	base := t.TempDir()

	// Creates missing directories, parents included.
	nested := filepath.Join(base, "a", "b", "cache")
	if err := EnsureDir(nested); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(nested); err != nil || !st.IsDir() {
		t.Fatalf("EnsureDir did not create %s: %v", nested, err)
	}

	// Idempotent on an existing directory.
	if err := EnsureDir(nested); err != nil {
		t.Fatalf("EnsureDir on existing directory: %v", err)
	}

	// A regular file at the path is a loud error.
	file := filepath.Join(base, "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := EnsureDir(file); err == nil {
		t.Fatal("EnsureDir accepted a regular file")
	}
}
