// Package atomicio writes artifact files atomically: content goes to a
// temporary file in the destination directory and reaches the final
// path only through rename(2). A process killed mid-write can therefore
// never leave a truncated CSV, JSON, or manifest that parses as a
// complete result — the destination either holds the previous complete
// file or the new complete file, and failed writes leave no temp
// droppings behind.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. It is the drop-in
// crash-safe counterpart of os.WriteFile.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteTo(path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// EnsureDir verifies that path can serve as a writable directory,
// creating it (and parents) if absent. A path that exists but is not a
// directory is a configuration error — the flag-validation paths of
// the CLIs call this so a -checkpoint or -cache pointing at a regular
// file fails loudly before any computation starts, not after.
func EnsureDir(path string) error {
	st, err := os.Stat(path)
	switch {
	case err == nil:
		if !st.IsDir() {
			return fmt.Errorf("atomicio: %s exists and is not a directory", path)
		}
		return nil
	case os.IsNotExist(err):
		if err := os.MkdirAll(path, 0o755); err != nil {
			return fmt.Errorf("atomicio: create directory %s: %w", path, err)
		}
		return nil
	default:
		return fmt.Errorf("atomicio: stat %s: %w", path, err)
	}
}

// WriteTo atomically replaces path with whatever fn streams into its
// writer. If fn (or any filesystem step) fails, the destination is left
// untouched and the temporary file is removed.
func WriteTo(path string, perm os.FileMode, fn func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: create temp for %s: %w", path, err)
	}
	tmpPath := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
		}
	}()
	if err = fn(tmp); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	if err = tmp.Chmod(perm); err != nil {
		return fmt.Errorf("atomicio: chmod %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if err = os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("atomicio: rename into %s: %w", path, err)
	}
	return nil
}
