package adversary

import (
	"math"
	"testing"

	"repro/internal/contact"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/routing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := New(5, []contact.NodeID{7}); err == nil {
		t.Fatal("accepted out-of-range node")
	}
	a, err := New(5, []contact.NodeID{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Count() != 2 || a.N() != 5 {
		t.Fatalf("count=%d n=%d", a.Count(), a.N())
	}
	if !a.IsCompromised(1) || a.IsCompromised(2) {
		t.Fatal("membership wrong")
	}
	if math.Abs(a.Fraction()-0.4) > 1e-12 {
		t.Fatalf("fraction %v", a.Fraction())
	}
}

func TestRandomCount(t *testing.T) {
	a, err := Random(100, 17, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Count() != 17 {
		t.Fatalf("count = %d", a.Count())
	}
	if _, err := Random(10, 11, rng.New(1)); err == nil {
		t.Fatal("accepted c > n")
	}
	if _, err := Random(10, -1, rng.New(1)); err == nil {
		t.Fatal("accepted c < 0")
	}
}

func TestRandomFraction(t *testing.T) {
	a, err := RandomFraction(100, 0.1, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Count() != 10 {
		t.Fatalf("count = %d, want 10", a.Count())
	}
	if _, err := RandomFraction(100, 1.5, rng.New(1)); err == nil {
		t.Fatal("accepted fraction > 1")
	}
}

func TestSenderBits(t *testing.T) {
	a, err := New(10, []contact.NodeID{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	bits := a.SenderBits([]contact.NodeID{1, 2, 3, 4})
	want := []bool{false, true, false, true}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bits = %v", bits)
		}
	}
}

func deliveredTrace(nodes ...contact.NodeID) routing.CopyTrace {
	ct := routing.CopyTrace{Delivered: true}
	for i, v := range nodes {
		ct.Visits = append(ct.Visits, routing.Visit{Node: v, Stage: i})
	}
	return ct
}

func TestTraceableRatePaperExample(t *testing.T) {
	// Path v1 v2 v3 v4 v5 (4 hops); compromising v1, v2, v4 yields
	// bits 1101 -> (4+1)/16.
	a, err := New(10, []contact.NodeID{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	ct := deliveredTrace(1, 2, 3, 4, 5)
	got := a.TraceableRate(ct)
	if math.Abs(got-5.0/16.0) > 1e-12 {
		t.Fatalf("got %v want %v", got, 5.0/16.0)
	}
}

func TestTraceableRateUndeliveredCopyUsesAllVisits(t *testing.T) {
	// An undelivered copy's senders are all its visited nodes.
	a, err := New(10, []contact.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	ct := routing.CopyTrace{Visits: []routing.Visit{{Node: 1, Stage: 0}, {Node: 2, Stage: 1}}}
	if got := a.TraceableRate(ct); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("got %v", got)
	}
}

func TestCompromisedPositionsSingleCopy(t *testing.T) {
	a, err := New(20, []contact.NodeID{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	// Path src=1, relays 3, 5, 7, dst=9 (K=3).
	ct := routing.CopyTrace{Delivered: true, Visits: []routing.Visit{
		{Node: 1, Stage: 0}, {Node: 3, Stage: 1}, {Node: 5, Stage: 2}, {Node: 7, Stage: 3}, {Node: 9, Stage: 4},
	}}
	if got := a.CompromisedPositions([]routing.CopyTrace{ct}, 3); got != 2 {
		t.Fatalf("positions = %d, want 2", got)
	}
}

func TestCompromisedPositionsMultiCopyUnion(t *testing.T) {
	a, err := New(20, []contact.NodeID{4, 11})
	if err != nil {
		t.Fatal(err)
	}
	// Two copies; position 1 compromised via copy B (node 4), position
	// 2 via copy A (node 11); destination visits are ignored.
	copyA := routing.CopyTrace{Visits: []routing.Visit{
		{Node: 1, Stage: 0}, {Node: 3, Stage: 1}, {Node: 11, Stage: 2},
	}}
	copyB := routing.CopyTrace{Visits: []routing.Visit{
		{Node: 1, Stage: 0}, {Node: 4, Stage: 1},
	}}
	if got := a.CompromisedPositions([]routing.CopyTrace{copyA, copyB}, 3); got != 2 {
		t.Fatalf("positions = %d, want 2", got)
	}
}

func TestCompromisedPositionsIgnoresDestinationStage(t *testing.T) {
	a, err := New(20, []contact.NodeID{9})
	if err != nil {
		t.Fatal(err)
	}
	ct := deliveredTrace(1, 3, 5, 7, 9) // node 9 at stage 4 = destination (K=3)
	if got := a.CompromisedPositions([]routing.CopyTrace{ct}, 3); got != 0 {
		t.Fatalf("destination counted as position: %d", got)
	}
}

func TestObservedPathAnonymityMatchesModelFormula(t *testing.T) {
	a, err := New(100, []contact.NodeID{3})
	if err != nil {
		t.Fatal(err)
	}
	ct := deliveredTrace(1, 3, 5, 7, 9)
	got := a.ObservedPathAnonymity(5, 3, []routing.CopyTrace{ct})
	want := model.PathAnonymity(100, 4, 5, 1)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestSampleSenders(t *testing.T) {
	s := rng.New(3)
	senders, err := SampleSenders(100, 3, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(senders) != 4 {
		t.Fatalf("len = %d, want eta = 4", len(senders))
	}
	seen := map[contact.NodeID]bool{}
	for _, v := range senders {
		if seen[v] {
			t.Fatal("duplicate sender in acyclic path")
		}
		seen[v] = true
	}
	if _, err := SampleSenders(3, 3, s); err == nil {
		t.Fatal("accepted too-small population")
	}
	if _, err := SampleSenders(10, 0, s); err == nil {
		t.Fatal("accepted k=0")
	}
}

func TestSamplePositions(t *testing.T) {
	s := rng.New(5)
	pos, err := SamplePositions(100, 3, 5, 10, false, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != 4 {
		t.Fatalf("positions = %d", len(pos))
	}
	if len(pos[0]) != 1 {
		t.Fatal("source position should hold one node")
	}
	for k := 1; k <= 3; k++ {
		if len(pos[k]) != 5 { // min(L, g) = 5
			t.Fatalf("position %d holds %d relays, want 5", k, len(pos[k]))
		}
	}
	// L > g: occupancy caps at g.
	pos, err = SamplePositions(100, 2, 7, 3, false, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(pos[1]) != 3 {
		t.Fatalf("occupancy %d, want g=3", len(pos[1]))
	}
	if _, err := SamplePositions(100, 0, 1, 1, false, s); err == nil {
		t.Fatal("accepted k=0")
	}
}

func TestPositionsCompromised(t *testing.T) {
	a, err := New(10, []contact.NodeID{2})
	if err != nil {
		t.Fatal(err)
	}
	positions := [][]contact.NodeID{{0}, {1, 2}, {3, 4}}
	if got := a.PositionsCompromised(positions); got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
}

// TestTraceableRateStatisticsMatchModel is the Fig. 6 validation in
// fast mode: measured traceable rate over many sampled paths must
// match the analytical expectation.
func TestTraceableRateStatisticsMatchModel(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical cross-check")
	}
	const n = 100
	root := rng.New(99)
	for _, k := range []int{3, 5, 10} {
		for _, frac := range []float64{0.1, 0.3} {
			const runs = 20000
			sum := 0.0
			for i := 0; i < runs; i++ {
				s := root.SplitN("run", i*100+k*10+int(frac*10))
				a, err := RandomFraction(n, frac, s.Split("adv"))
				if err != nil {
					t.Fatal(err)
				}
				senders, err := SampleSenders(n, k, s.Split("path"))
				if err != nil {
					t.Fatal(err)
				}
				sum += model.TraceableRateOfPath(a.SenderBits(senders))
			}
			got := sum / runs
			want := model.TraceableRate(k+1, frac)
			if math.Abs(got-want) > 0.01 {
				t.Errorf("K=%d c/n=%v: measured %v vs model %v", k, frac, got, want)
			}
		}
	}
}

// TestAnonymityStatisticsMatchModel is the Fig. 8/12 validation in
// fast mode.
func TestAnonymityStatisticsMatchModel(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical cross-check")
	}
	const n, k, g = 100, 3, 5
	root := rng.New(123)
	for _, copies := range []int{1, 3} {
		for _, frac := range []float64{0.1, 0.2} {
			const runs = 20000
			sum := 0.0
			for i := 0; i < runs; i++ {
				s := root.SplitN("run", i*100+copies*10+int(frac*10))
				a, err := RandomFraction(n, frac, s.Split("adv"))
				if err != nil {
					t.Fatal(err)
				}
				pos, err := SamplePositions(n, k, copies, g, true, s.Split("path"))
				if err != nil {
					t.Fatal(err)
				}
				cO := a.PositionsCompromised(pos)
				sum += model.PathAnonymity(n, k+1, g, float64(cO))
			}
			got := sum / runs
			want := model.PathAnonymityMultiCopy(n, k+1, g, frac, copies)
			if math.Abs(got-want) > 0.02 {
				t.Errorf("L=%d c/n=%v: measured %v vs model %v", copies, frac, got, want)
			}
		}
	}
}

func BenchmarkTraceableRateFastMode(b *testing.B) {
	s := rng.New(1)
	a, err := RandomFraction(100, 0.1, s)
	if err != nil {
		b.Fatal(err)
	}
	senders, err := SampleSenders(100, 3, s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = model.TraceableRateOfPath(a.SenderBits(senders))
	}
}
