// Package adversary implements the paper's threat model (Sec. IV-D/E):
// a fraction c/n of nodes is compromised; a compromised node holding a
// message discloses the link to its next hop (traceable rate, Eq. 1)
// and confines the next onion router to its group of g candidates
// (path anonymity, Eq. 16).
//
// Security metrics can be measured two ways, which the tests verify
// agree: the honest mode evaluates realized routing.CopyTrace paths
// from actual simulations; the fast mode samples sender sequences
// directly, which is valid because both metrics are independent of the
// contact-graph realization (Sec. V-A).
package adversary

import (
	"fmt"

	"repro/internal/contact"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/routing"
)

// Adversary is a set of compromised nodes within an n-node network.
type Adversary struct {
	n           int
	compromised map[contact.NodeID]bool
}

// New builds an adversary controlling exactly the given nodes.
func New(n int, nodes []contact.NodeID) (*Adversary, error) {
	if n < 1 {
		return nil, fmt.Errorf("adversary: need at least one node, got %d", n)
	}
	a := &Adversary{n: n, compromised: make(map[contact.NodeID]bool, len(nodes))}
	for _, v := range nodes {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("adversary: node %d out of range [0, %d)", v, n)
		}
		a.compromised[v] = true
	}
	return a, nil
}

// Random builds an adversary controlling c distinct nodes chosen
// uniformly at random.
func Random(n, c int, s *rng.Stream) (*Adversary, error) {
	if c < 0 || c > n {
		return nil, fmt.Errorf("adversary: cannot compromise %d of %d nodes", c, n)
	}
	nodes := make([]contact.NodeID, 0, c)
	for _, v := range s.Sample(n, c) {
		nodes = append(nodes, contact.NodeID(v))
	}
	return New(n, nodes)
}

// RandomFraction compromises round(frac*n) nodes (the paper sweeps
// c/n from 1% to 50%).
func RandomFraction(n int, frac float64, s *rng.Stream) (*Adversary, error) {
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("adversary: fraction %v out of [0,1]", frac)
	}
	c := int(frac*float64(n) + 0.5)
	return Random(n, c, s)
}

// N returns the network size.
func (a *Adversary) N() int { return a.n }

// Count returns the number of compromised nodes c.
func (a *Adversary) Count() int { return len(a.compromised) }

// Fraction returns c/n.
func (a *Adversary) Fraction() float64 { return float64(len(a.compromised)) / float64(a.n) }

// IsCompromised reports whether node v is controlled by the adversary.
func (a *Adversary) IsCompromised(v contact.NodeID) bool { return a.compromised[v] }

// SenderBits maps a sender sequence to the bit string of Sec. IV-D:
// bit i is true when sender i is compromised, disclosing the link it
// forwards over.
func (a *Adversary) SenderBits(senders []contact.NodeID) []bool {
	bits := make([]bool, len(senders))
	for i, v := range senders {
		bits[i] = a.IsCompromised(v)
	}
	return bits
}

// TraceableRate evaluates Eq. 1 on a realized copy path.
func (a *Adversary) TraceableRate(ct routing.CopyTrace) float64 {
	return model.TraceableRateOfPath(a.SenderBits(ct.Senders()))
}

// CompromisedPositions counts the onion path positions 0..K (0 = the
// source and any sprayed relays, k = the R_k relay of each copy) at
// which at least one occupant across all copies is compromised. This
// is the multi-copy random variable Y' of Sec. IV-F; with a single
// copy it reduces to Y of Eq. 15.
func (a *Adversary) CompromisedPositions(copies []routing.CopyTrace, k int) int {
	hit := make([]bool, k+1)
	for _, c := range copies {
		for _, v := range c.Visits {
			if v.Stage >= 0 && v.Stage <= k && a.IsCompromised(v.Node) {
				hit[v.Stage] = true
			}
		}
	}
	count := 0
	for _, h := range hit {
		if h {
			count++
		}
	}
	return count
}

// ObservedPathAnonymity measures the realized anonymity degree of a
// routed message: the number of compromised hop positions is plugged
// into Eq. 19 exactly as the analysis plugs in its expectation.
func (a *Adversary) ObservedPathAnonymity(g, k int, copies []routing.CopyTrace) float64 {
	cO := a.CompromisedPositions(copies, k)
	return model.PathAnonymity(a.n, k+1, g, float64(cO))
}

// SampleSenders draws a uniform sender sequence for fast-mode security
// experiments: a source plus one relay per onion group, all distinct
// (acyclic path assumption). The returned slice has length k+1 = eta.
func SampleSenders(n, k int, s *rng.Stream) ([]contact.NodeID, error) {
	if k < 1 {
		return nil, fmt.Errorf("adversary: need at least one relay, got %d", k)
	}
	if n < k+2 {
		return nil, fmt.Errorf("adversary: %d nodes cannot host a %d-relay acyclic path", n, k)
	}
	// k+1 senders (source + K relays); the destination is not a sender.
	picks := s.Sample(n, k+1)
	out := make([]contact.NodeID, k+1)
	for i, p := range picks {
		out[i] = contact.NodeID(p)
	}
	return out, nil
}

// SamplePositions draws the position occupancy of an L-copy message
// for fast-mode anonymity experiments. Each relay position k holds
// min(L, g) distinct members of that hop's onion group (copies never
// share a holder: Forward() is false for duplicates). With spray set
// (the paper's simulated variant, and the regime Eq. 20 models — all
// eta positions have L-way exposure), position 0 holds the source plus
// the L-1 sprayed relays; otherwise it holds the source alone
// (Algorithm 2 strict mode).
func SamplePositions(n, k, copies, g int, spray bool, s *rng.Stream) ([][]contact.NodeID, error) {
	if k < 1 || copies < 1 || g < 1 {
		return nil, fmt.Errorf("adversary: invalid parameters k=%d L=%d g=%d", k, copies, g)
	}
	perGroup := copies
	if perGroup > g {
		perGroup = g
	}
	if n < 2+perGroup {
		return nil, fmt.Errorf("adversary: %d nodes too few for %d relays per hop", n, perGroup)
	}
	out := make([][]contact.NodeID, k+1)
	firstHop := 1
	if spray {
		firstHop = copies
		if firstHop > n-1 {
			firstHop = n - 1
		}
	}
	out[0] = samplePosition(n, firstHop, s)
	for pos := 1; pos <= k; pos++ {
		out[pos] = samplePosition(n, perGroup, s)
	}
	return out, nil
}

func samplePosition(n, occupancy int, s *rng.Stream) []contact.NodeID {
	picks := s.Sample(n, occupancy)
	nodes := make([]contact.NodeID, occupancy)
	for i, p := range picks {
		nodes[i] = contact.NodeID(p)
	}
	return nodes
}

// PositionsCompromised counts positions with at least one compromised
// occupant in a fast-mode sample.
func (a *Adversary) PositionsCompromised(positions [][]contact.NodeID) int {
	count := 0
	for _, occupants := range positions {
		for _, v := range occupants {
			if a.IsCompromised(v) {
				count++
				break
			}
		}
	}
	return count
}
