package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

var testKey = Key{GitRevision: "abc123", SpecHash: "deadbeef", Seed: 42}

// writeSample creates a checkpoint with n records and returns its path.
func writeSample(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sample.ckpt")
	st, err := Create(path, testKey)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := st.Save("batch/a", i, []byte{byte(i), 0xFF, byte(i * 3)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	path := writeSample(t, 5)
	key, records, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if key != testKey {
		t.Fatalf("key = %+v, want %+v", key, testKey)
	}
	if len(records) != 5 {
		t.Fatalf("got %d records, want 5", len(records))
	}
	for i, r := range records {
		if r.Batch != "batch/a" || r.Trial != i || !bytes.Equal(r.Data, []byte{byte(i), 0xFF, byte(i * 3)}) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

func TestResumeServesLoadedRecords(t *testing.T) {
	path := writeSample(t, 3)
	st, err := Resume(path, testKey)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Loaded() != 3 {
		t.Fatalf("Loaded() = %d, want 3", st.Loaded())
	}
	data, ok := st.Lookup("batch/a", 1)
	if !ok || !bytes.Equal(data, []byte{1, 0xFF, 3}) {
		t.Fatalf("Lookup(1) = %v, %v", data, ok)
	}
	if _, ok := st.Lookup("batch/a", 99); ok {
		t.Fatal("Lookup(99) should miss")
	}
	if _, ok := st.Lookup("batch/other", 1); ok {
		t.Fatal("Lookup of foreign batch should miss")
	}
	// Appends after resume extend the same file.
	if err := st.Save("batch/a", 3, []byte{9}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	_, records, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 {
		t.Fatalf("after resumed append: %d records, want 4", len(records))
	}
}

func TestResumeRejectsForeignKey(t *testing.T) {
	path := writeSample(t, 2)
	for name, k := range map[string]Key{
		"different revision": {GitRevision: "other", SpecHash: testKey.SpecHash, Seed: testKey.Seed},
		"different spec":     {GitRevision: testKey.GitRevision, SpecHash: "ffff", Seed: testKey.Seed},
		"different seed":     {GitRevision: testKey.GitRevision, SpecHash: testKey.SpecHash, Seed: 7},
	} {
		if _, err := Resume(path, k); !errors.Is(err, ErrKeyMismatch) {
			t.Errorf("%s: err = %v, want ErrKeyMismatch", name, err)
		}
	}
}

func TestRejectsWrongMagicAndVersion(t *testing.T) {
	path := writeSample(t, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	bad := append([]byte("NOTACKPT"), data[8:]...)
	if _, _, err := Decode(bad); !errors.Is(err, ErrNotCheckpoint) {
		t.Fatalf("wrong magic: err = %v, want ErrNotCheckpoint", err)
	}

	future := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(future[8:], Version+1)
	if _, _, err := Decode(future); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: err = %v, want ErrVersion", err)
	}

	if _, _, err := Decode([]byte("short")); !errors.Is(err, ErrNotCheckpoint) {
		t.Fatalf("short file: err = %v, want ErrNotCheckpoint", err)
	}
}

func TestRejectsCorruptFrames(t *testing.T) {
	path := writeSample(t, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte near the end: CRC of that record must fail.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-2] ^= 0x40
	if _, _, err := Decode(flipped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte: err = %v, want ErrCorrupt", err)
	}

	// An impossible declared frame length is corruption, not truncation.
	huge := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(huge[12:], maxFrame+1)
	if _, _, err := Decode(huge); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge length: err = %v, want ErrCorrupt", err)
	}
}

func TestTruncatedTailDetectedAndRepaired(t *testing.T) {
	path := writeSample(t, 4)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final frame: keep all but its last 2 bytes.
	torn := full[:len(full)-2]
	if _, _, err := Decode(torn); !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn tail: err = %v, want ErrTruncated", err)
	}
	tornPath := filepath.Join(t.TempDir(), "torn.ckpt")
	if err := os.WriteFile(tornPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	// Strict Load refuses it; Resume repairs and serves the intact 3.
	if _, _, err := Load(tornPath); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Load of torn file: err = %v, want ErrTruncated", err)
	}
	st, err := Resume(tornPath, testKey)
	if err != nil {
		t.Fatal(err)
	}
	if st.Loaded() != 3 {
		t.Fatalf("Loaded() = %d, want 3 intact records", st.Loaded())
	}
	// The repaired file appends cleanly and strict-loads afterwards.
	if err := st.Save("batch/a", 3, []byte{42}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	_, records, err := Load(tornPath)
	if err != nil {
		t.Fatalf("strict load after repair: %v", err)
	}
	if len(records) != 4 || records[3].Trial != 3 || !bytes.Equal(records[3].Data, []byte{42}) {
		t.Fatalf("post-repair records = %+v", records)
	}
}

func TestResumeRejectsHeaderTear(t *testing.T) {
	path := writeSample(t, 1)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside the key frame: no valid key means no repair.
	hdrTorn := full[:14]
	tornPath := filepath.Join(t.TempDir(), "hdr.ckpt")
	if err := os.WriteFile(tornPath, hdrTorn, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(tornPath, testKey); !errors.Is(err, ErrTruncated) {
		t.Fatalf("header tear: err = %v, want ErrTruncated rejection", err)
	}
	// The file must not have been truncated to zero by a "repair".
	info, err := os.Stat(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != int64(len(hdrTorn)) {
		t.Fatalf("Resume modified a file it rejected (size %d, want %d)", info.Size(), len(hdrTorn))
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	path := writeSample(t, 5)
	st, err := Create(path, testKey)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	_, records, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 {
		t.Fatalf("Create left %d old records behind", len(records))
	}
}

func TestSaveAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	st, err := Create(path, testKey)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if err := st.Save("b", 0, []byte{1}); err == nil {
		t.Fatal("Save after Close should fail")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestLastRecordWinsOnDuplicate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.ckpt")
	st, err := Create(path, testKey)
	if err != nil {
		t.Fatal(err)
	}
	st.Save("b", 0, []byte{1})
	st.Save("b", 0, []byte{2})
	st.Close()
	re, err := Resume(path, testKey)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	data, ok := re.Lookup("b", 0)
	if !ok || !bytes.Equal(data, []byte{2}) {
		t.Fatalf("Lookup = %v, %v; want the later record", data, ok)
	}
}
