package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzCheckpointLoad hammers the checkpoint decoder with arbitrary
// bytes. The contract under fuzz: the decoder never panics, and every
// rejection is one of the typed errors — torn frames, flipped bytes,
// and truncated tails must never produce a partial silent load (a nil
// error with fewer records than the file's complete frames claim).
func FuzzCheckpointLoad(f *testing.F) {
	// Seed with a real checkpoint and the damage shapes a killed or
	// misbehaving writer can actually produce.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.ckpt")
	st, err := Create(path, Key{GitRevision: "rev", SpecHash: "hash", Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Save("fig04/delivery/s0", i, []byte{byte(i), 0xAB, 0xCD}); err != nil {
			f.Fatal(err)
		}
	}
	st.Close()
	good, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("DTNCKPT\n")) // magic only
	f.Add(good[:10])           // torn inside the version word
	f.Add(good[:len(good)-1])  // torn tail, one byte short
	f.Add(good[:len(good)/2])  // torn mid-file
	for _, pos := range []int{8, 12, 20, len(good) - 3} {
		flipped := append([]byte(nil), good...)
		flipped[pos] ^= 0x80
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		key, records, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrNotCheckpoint) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrKeyMismatch) && !errors.Is(err, ErrCorrupt) &&
				!errors.Is(err, ErrTruncated) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted input: re-writing the same key and records must
		// reproduce a file that decodes to the same content — the
		// decoder may not have hallucinated structure.
		rt := filepath.Join(t.TempDir(), "rt.ckpt")
		st, err := Create(rt, key)
		if err != nil {
			t.Fatalf("re-create from accepted decode: %v", err)
		}
		for _, r := range records {
			if err := st.Save(r.Batch, r.Trial, r.Data); err != nil {
				t.Fatalf("re-save accepted record: %v", err)
			}
		}
		st.Close()
		key2, records2, err := Load(rt)
		if err != nil {
			t.Fatalf("round trip of accepted input failed: %v", err)
		}
		if key2 != key || len(records2) != len(records) {
			t.Fatalf("round trip diverged: %d vs %d records", len(records2), len(records))
		}
	})
}
