// Package checkpoint persists completed Monte Carlo trial results
// across process lifetimes, so an interrupted figure/sweep run can
// resume without recomputing finished work. It is layered:
//
//   - framelog.go is the keyed frame log — the raw append-only file
//     format (header + CRC-framed gob records) shared with the
//     content-addressed result cache (internal/resultcache);
//   - this file is the per-run Store: one log per (revision, spec,
//     seed) run, opened by Create/Resume and consumed through the
//     runner.ResultStore interface.
//
// # File format
//
// A checkpoint file is an append-only write-ahead log:
//
//	magic   8 bytes  "DTNCKPT\n"
//	version u32 LE   format version (currently 1)
//	frame   key frame: gob-encoded Key
//	frame*  record frames: gob-encoded Record, one per completed trial
//
// where every frame is
//
//	length  u32 LE   payload byte count
//	crc     u32 LE   IEEE CRC-32 of the payload
//	payload length bytes
//
// The header (magic, version, key frame) is written atomically via
// temp-file + rename; record frames are appended with one write(2)
// each, so a SIGKILL can tear at most the final frame. The reader
// distinguishes that expected artifact (ErrTruncated — the resume path
// repairs it by truncating to the last complete frame) from actual
// corruption (ErrCorrupt: CRC mismatch, undecodable gob, or an
// impossible frame length), which is always rejected loudly.
//
// # Keying
//
// The key frame pins (git revision, spec hash, seed). A checkpoint
// whose key does not match the resuming run is foreign — produced by
// different code, a different spec, or a different seed — and loading
// it would silently change results, so Resume rejects it with
// ErrKeyMismatch instead. The worker count is deliberately absent from
// the key: trial results are index-labeled (see runner.MapTrials), so
// a run may resume at any -workers value. The result cache layered on
// the same format replaces the revision with a content hash of the
// spec's numerical inputs — see internal/resultcache.
package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"repro/internal/atomicio"
)

// Version is the checkpoint file format version. Files written by a
// different version are rejected with ErrVersion.
const Version uint32 = 1

var magic = [8]byte{'D', 'T', 'N', 'C', 'K', 'P', 'T', '\n'}

// maxFrame bounds a single frame's payload. A declared length beyond
// it cannot come from this writer, so the reader classifies it as
// corruption rather than attempting a giant allocation.
const maxFrame = 16 << 20

// Typed load failures. Every way a checkpoint can fail to load maps to
// exactly one of these, so callers (and the fuzz target) can assert
// that no malformed input ever yields a partial silent load.
var (
	// ErrNotCheckpoint: the file does not begin with the magic bytes.
	ErrNotCheckpoint = errors.New("checkpoint: not a checkpoint file")
	// ErrVersion: the format version is not the one this code writes.
	ErrVersion = errors.New("checkpoint: unsupported format version")
	// ErrKeyMismatch: the stored key names a different (git revision,
	// spec hash, seed) than the resuming run.
	ErrKeyMismatch = errors.New("checkpoint: key mismatch (stale or foreign checkpoint)")
	// ErrCorrupt: a complete frame fails its CRC, declares an
	// impossible length, or carries undecodable gob.
	ErrCorrupt = errors.New("checkpoint: corrupt frame")
	// ErrTruncated: the file ends mid-frame — the expected tear pattern
	// of a killed writer. Resume repairs it; strict loads reject it.
	ErrTruncated = errors.New("checkpoint: truncated trailing frame")
)

// Key identifies the run a checkpoint belongs to. Two runs with equal
// keys compute identical trial results, so their checkpoints are
// interchangeable; unequal keys mean resuming would corrupt results.
type Key struct {
	GitRevision string // obs.GitRevision() of the writing binary; resultcache stores its content sentinel here
	SpecHash    string // hash of the scenario spec + option bits
	Seed        uint64 // base RNG seed
}

// Record is one persisted trial result: which batch (scenario series)
// and trial index it is, plus the runner's gob encoding of the value.
type Record struct {
	Batch string
	Trial int
	Data  []byte
}

// Store is an open checkpoint file implementing runner.ResultStore.
// Lookup serves results loaded at open; Save appends new ones
// durably. Safe for concurrent use by the runner's workers.
type Store struct {
	mu     sync.Mutex
	f      *os.File
	loaded map[recordKey][]byte
}

type recordKey struct {
	batch string
	trial int
}

// Create starts a fresh checkpoint at path for the given key,
// truncating any existing file there. The header is written atomically
// so a crash during creation leaves either no file or a valid empty
// checkpoint.
func Create(path string, key Key) (*Store, error) {
	hdr, err := HeaderBytes(key)
	if err != nil {
		return nil, err
	}
	if err := atomicio.WriteFile(path, hdr, 0o644); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open for append: %w", err)
	}
	return &Store{f: f, loaded: make(map[recordKey][]byte)}, nil
}

// Resume opens an existing checkpoint at path, validates it against
// key, loads every complete record, and prepares the file for further
// appends. A torn trailing frame (the expected SIGKILL artifact) is
// repaired by truncating to the last complete frame; every other
// malformation — wrong magic, wrong version, foreign key, CRC or gob
// corruption — is rejected with its typed error.
func Resume(path string, key Key) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	gotKey, records, validEnd, err := decode(data)
	torn := err != nil
	if torn && (!errors.Is(err, ErrTruncated) || validEnd == 0) {
		// Corruption, or a tear inside the header itself (so the key
		// cannot be validated): reject, never repair.
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	if gotKey != key {
		return nil, fmt.Errorf("checkpoint: %s: stored key %+v does not match run key %+v: %w",
			path, gotKey, key, ErrKeyMismatch)
	}
	if torn {
		if err := os.Truncate(path, int64(validEnd)); err != nil {
			return nil, fmt.Errorf("checkpoint: repair torn tail of %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open for append: %w", err)
	}
	loaded := make(map[recordKey][]byte, len(records))
	for _, r := range records {
		loaded[recordKey{r.Batch, r.Trial}] = r.Data
	}
	return &Store{f: f, loaded: loaded}, nil
}

// Load strictly decodes the checkpoint at path, returning its key and
// every record. Unlike Resume it accepts nothing malformed — a torn
// tail is ErrTruncated. It never modifies the file; tests and tools
// use it to inspect checkpoints.
func Load(path string) (Key, []Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Key{}, nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	key, records, _, derr := decode(data)
	if derr != nil {
		return Key{}, nil, derr
	}
	return key, records, nil
}

// Decode parses raw checkpoint bytes. It is exported for the fuzz
// target; commands use Create/Resume/Load.
func Decode(data []byte) (Key, []Record, error) {
	key, records, _, err := decode(data)
	if err != nil {
		return Key{}, nil, err
	}
	return key, records, nil
}

// decode parses the full file image by composing the frame-log
// primitives. validEnd is the offset of the last byte belonging to a
// complete frame — the repair point when the error is ErrTruncated; it
// is zero when the tear is inside the header itself.
func decode(data []byte) (key Key, records []Record, validEnd int, err error) {
	key, off, err := DecodeHeader(data)
	if err != nil {
		return Key{}, nil, 0, err
	}
	records, validEnd, err = DecodeRecordsFrom(data, off)
	return key, records, validEnd, err
}

// Lookup implements runner.ResultStore over the records loaded at
// open time. Results saved during this process's lifetime are not
// served back — the runner never re-requests a trial it just ran.
func (s *Store) Lookup(batch string, trial int) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.loaded[recordKey{batch, trial}]
	return data, ok
}

// Save appends one completed trial result. The frame is assembled in
// memory and issued as a single write so a kill between Saves tears at
// most the in-flight frame, never an earlier one.
func (s *Store) Save(batch string, trial int, data []byte) error {
	frame, err := EncodeRecord(Record{Batch: batch, Trial: trial, Data: data})
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("checkpoint: store is closed")
	}
	if _, err := s.f.Write(frame); err != nil {
		return fmt.Errorf("checkpoint: append record: %w", err)
	}
	return nil
}

// Loaded reports how many records were recovered when the store was
// opened — zero for a fresh checkpoint, the resumed-trial count after
// Resume.
func (s *Store) Loaded() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.loaded)
}

// Close releases the underlying file. Safe to call more than once.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
