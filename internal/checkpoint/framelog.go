package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
)

// This file is the keyed frame log: the storage primitive underneath
// both the per-run checkpoint Store (this package) and the
// content-addressed result cache shards (internal/resultcache). A log
// is a header — magic, format version, one gob-encoded Key frame —
// followed by zero or more gob-encoded Record frames, every frame
// CRC-framed and appended with a single write so a SIGKILL tears at
// most the trailing frame. The exported functions below are the whole
// format: writers compose HeaderBytes + EncodeRecord, readers compose
// DecodeHeader + DecodeRecordsFrom (incrementally, from any byte
// offset a previous decode returned).

// HeaderBytes serializes a log header (magic, version, key frame) for
// key. Writers persist it atomically before appending record frames.
func HeaderBytes(key Key) ([]byte, error) {
	var hdr bytes.Buffer
	hdr.Write(magic[:])
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], Version)
	hdr.Write(ver[:])
	keyFrame, err := encodeFrame(&key)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode key: %w", err)
	}
	hdr.Write(keyFrame)
	return hdr.Bytes(), nil
}

// EncodeRecord serializes one record as a complete CRC frame, ready to
// be appended to a log with a single write.
func EncodeRecord(rec Record) ([]byte, error) {
	frame, err := encodeFrame(&rec)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode record: %w", err)
	}
	return frame, nil
}

// DecodeHeader parses and validates a log header, returning the stored
// key and the offset of the first record frame. Malformed headers map
// to the package's typed errors (ErrNotCheckpoint, ErrVersion,
// ErrTruncated, ErrCorrupt).
func DecodeHeader(data []byte) (Key, int, error) {
	var key Key
	if len(data) < len(magic) || !bytes.Equal(data[:len(magic)], magic[:]) {
		return Key{}, 0, ErrNotCheckpoint
	}
	off := len(magic)
	if len(data) < off+4 {
		return Key{}, 0, fmt.Errorf("%w: header ends mid-version", ErrTruncated)
	}
	if v := binary.LittleEndian.Uint32(data[off:]); v != Version {
		return Key{}, 0, fmt.Errorf("%w: file has version %d, this build reads %d", ErrVersion, v, Version)
	}
	off += 4
	payload, next, err := readFrame(data, off)
	if err != nil {
		return Key{}, 0, fmt.Errorf("key frame: %w", err)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&key); err != nil {
		return Key{}, 0, fmt.Errorf("%w: key frame gob: %v", ErrCorrupt, err)
	}
	return key, next, nil
}

// DecodeRecordsFrom parses record frames starting at off (a value
// previously returned by DecodeHeader or DecodeRecordsFrom), returning
// the decoded records and the offset of the last byte belonging to a
// complete frame. On a torn tail the records decoded so far are
// returned alongside ErrTruncated — incremental readers (resultcache
// shard refresh) treat that as "a writer is mid-append, retry from
// validEnd later", while Resume uses validEnd as the repair point.
func DecodeRecordsFrom(data []byte, off int) (records []Record, validEnd int, err error) {
	validEnd = off
	for off < len(data) {
		payload, next, ferr := readFrame(data, off)
		if ferr != nil {
			// Records decoded so far are intact; report them alongside
			// the error so callers can repair or retry a torn tail.
			return records, validEnd, fmt.Errorf("record %d: %w", len(records), ferr)
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return records, validEnd, fmt.Errorf("%w: record %d gob: %v", ErrCorrupt, len(records), err)
		}
		records = append(records, rec)
		off = next
		validEnd = off
	}
	return records, validEnd, nil
}

// readFrame parses one frame at off, returning its payload and the
// offset of the next frame. It distinguishes a frame that runs past
// the end of the data (ErrTruncated — a torn append) from one whose
// complete bytes are inconsistent (ErrCorrupt).
func readFrame(data []byte, off int) (payload []byte, next int, err error) {
	if off+8 > len(data) {
		return nil, 0, fmt.Errorf("%w: frame header ends at byte %d", ErrTruncated, len(data))
	}
	length := binary.LittleEndian.Uint32(data[off:])
	crc := binary.LittleEndian.Uint32(data[off+4:])
	if length > maxFrame {
		return nil, 0, fmt.Errorf("%w: frame declares impossible length %d", ErrCorrupt, length)
	}
	start := off + 8
	end := start + int(length)
	if end > len(data) {
		return nil, 0, fmt.Errorf("%w: frame payload ends at byte %d", ErrTruncated, len(data))
	}
	payload = data[start:end]
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, 0, fmt.Errorf("%w: CRC %08x, frame claims %08x", ErrCorrupt, got, crc)
	}
	return payload, end, nil
}

// encodeFrame gob-encodes v and wraps it in a length+CRC frame.
func encodeFrame(v any) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return nil, err
	}
	if payload.Len() > maxFrame {
		return nil, fmt.Errorf("frame payload %d bytes exceeds limit %d", payload.Len(), maxFrame)
	}
	frame := make([]byte, 8+payload.Len())
	binary.LittleEndian.PutUint32(frame[0:], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload.Bytes()))
	copy(frame[8:], payload.Bytes())
	return frame, nil
}
