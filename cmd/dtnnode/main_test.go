package main

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// TestDaemonMainLifecycle runs three dtnnode mains against an
// in-process directory, fires one live contact between two of them via
// the control plane, and shuts the fleet down with quit requests —
// every main must exit cleanly and report its stats.
func TestDaemonMainLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP daemons")
	}
	dir, err := cluster.NewDir(cluster.DirConfig{Nodes: 3, GroupSize: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer dir.Close()

	const n = 3
	outs := make([]bytes.Buffer, n)
	errs := make(chan error, n)
	addrs := make([]chan string, n)
	for id := 0; id < n; id++ {
		addrs[id] = make(chan string, 1)
		go func(id int) {
			args := []string{"-id", strconv.Itoa(id), "-dir", dir.Addr()}
			errs <- run(args, &outs[id], func(addr string) { addrs[id] <- addr })
		}(id)
	}
	nodeAddr := make([]string, n)
	for id := 0; id < n; id++ {
		select {
		case nodeAddr[id] = <-addrs[id]:
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon %d did not come up", id)
		}
	}
	if got := dir.Members(); got != n {
		t.Fatalf("directory has %d members, want %d", got, n)
	}

	co := cluster.NewCoordinator(0)
	defer co.Close()
	msg := cluster.SyntheticWorkload(5, n, 1, 1, 1)[0]
	if err := co.Inject(nodeAddr[msg.Src], 5, msg); err != nil {
		t.Fatal(err)
	}
	if err := co.Contact(nodeAddr[msg.Src], msg.Dst, nodeAddr[msg.Dst], 1.0); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < n; id++ {
		if err := co.Quit(nodeAddr[id]); err != nil {
			t.Fatalf("quit daemon %d: %v", id, err)
		}
	}
	for id := 0; id < n; id++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatalf("a dtnnode main failed: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("a dtnnode main did not exit after quit")
		}
	}
	for id := 0; id < n; id++ {
		if !strings.Contains(outs[id].String(), "done: sent=") {
			t.Fatalf("daemon %d did not report stats:\n%s", id, outs[id].String())
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dir", "127.0.0.1:1"}, &out, nil); err == nil || !strings.Contains(err.Error(), "-id") {
		t.Fatalf("missing -id not rejected: %v", err)
	}
	if err := run([]string{"-id", "0"}, &out, nil); err == nil || !strings.Contains(err.Error(), "-dir") {
		t.Fatalf("missing -dir not rejected: %v", err)
	}
	if err := run([]string{"-id", "0", "-dir", "127.0.0.1:1", "-timeout", "100ms", "-join-wait", "100ms"}, &out, nil); err == nil {
		t.Fatal("unreachable directory not surfaced")
	}
}

// TestNodeBeforeDirStartupOrder: the reverse-order regression. A
// dtnnode main launched before its dtndir directory exists must keep
// retrying within -join-wait and serve normally once the directory
// appears — fleet orchestration must not need startup sequencing.
func TestNodeBeforeDirStartupOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP daemons")
	}
	// Reserve the directory's address before the directory exists.
	rsv, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dirAddr := rsv.Addr().String()
	_ = rsv.Close()

	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		errCh <- run([]string{
			"-id", "0", "-dir", dirAddr, "-join-wait", "10s",
		}, &out, func(addr string) { addrCh <- addr })
	}()

	// The node must still be retrying, not dead.
	time.Sleep(200 * time.Millisecond)
	select {
	case err := <-errCh:
		t.Fatalf("dtnnode gave up before the directory started: %v\n%s", err, out.String())
	default:
	}

	dir, err := cluster.NewDir(cluster.DirConfig{Nodes: 3, GroupSize: 1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.Start(dirAddr); err != nil {
		t.Fatal(err)
	}
	defer dir.Close()

	var nodeAddr string
	select {
	case nodeAddr = <-addrCh:
	case err := <-errCh:
		t.Fatalf("dtnnode exited instead of joining the late directory: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("dtnnode never joined the late-started directory")
	}
	if got := dir.Members(); got != 1 {
		t.Fatalf("directory has %d members, want 1", got)
	}
	co := cluster.NewCoordinator(0)
	defer co.Close()
	if err := co.Quit(nodeAddr); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("dtnnode failed after the reversed startup: %v\n%s", err, out.String())
	}
}

// TestMetricsEndpoint: a dtnnode run with -metrics serves well-formed
// Prometheus exposition reflecting its live cluster activity, and the
// endpoint goes down with the daemon.
func TestMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP daemons")
	}
	dir, err := cluster.NewDir(cluster.DirConfig{Nodes: 3, GroupSize: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer dir.Close()

	urlCh := make(chan string, 1)
	metricsReady = func(url string) { urlCh <- url }
	defer func() { metricsReady = nil }()

	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		errCh <- run([]string{
			"-id", "0", "-dir", dir.Addr(), "-metrics", "127.0.0.1:0",
		}, &out, func(addr string) { addrCh <- addr })
	}()
	var scrapeURL, nodeAddr string
	select {
	case scrapeURL = <-urlCh:
	case err := <-errCh:
		t.Fatalf("dtnnode exited before serving metrics: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("metrics endpoint never came up")
	}
	select {
	case nodeAddr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never registered")
	}

	resp, err := http.Get(scrapeURL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParseExposition(body)
	if err != nil {
		t.Fatalf("scrape is not valid exposition: %v", err)
	}
	// Registering with the directory dialed at least once.
	if v, ok := exp.Value("dtn_cluster_dials_total"); !ok || v < 1 {
		t.Fatalf("dtn_cluster_dials_total = %v (ok=%v), want >= 1", v, ok)
	}

	co := cluster.NewCoordinator(0)
	defer co.Close()
	if err := co.Quit(nodeAddr); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("dtnnode failed: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("dtnnode did not exit after quit")
	}
	if _, err := http.Get(scrapeURL); err == nil {
		t.Fatal("metrics endpoint still serving after the daemon exited")
	}
	if !strings.Contains(out.String(), "serving metrics at") {
		t.Fatalf("run did not announce the metrics endpoint:\n%s", out.String())
	}
}
