// Command dtnnode runs one DTN node as a network daemon: it joins the
// directory service (dtndir), reconstructs the group structure and
// layer keys from its welcome (Shamir threshold shares), and then
// speaks the custody offer/verdict protocol over length-framed TCP —
// the same internal/bundle wire format the in-process simulator uses,
// so truncation and tamper classification applies to real socket
// tears.
//
// Usage:
//
//	dtnnode -id 0 -dir 127.0.0.1:7700
//	dtnnode -id 3 -dir 127.0.0.1:7700 -listen 127.0.0.1:7713 -buffer 64 -spray=false
//
// Startup order is free: a node started before its directory keeps
// retrying the registration with jittered backoff for -join-wait
// (default 15s) and comes up the moment the directory is listening.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "dtnnode:", err)
		os.Exit(1)
	}
}

// metricsReady, when set by a test, receives the metrics scrape URL
// once the endpoint is serving.
var metricsReady func(url string)

// serveMetricsFlag installs a fresh observability collector and serves
// it as a Prometheus scrape target when addr is non-empty. It returns
// a shutdown func (never nil).
func serveMetricsFlag(addr, command string, out io.Writer) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	col := obs.NewCollector()
	obs.Install(col)
	ms, err := obs.ServeMetrics(addr, col)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "%s: serving metrics at %s\n", command, ms.URL())
	if metricsReady != nil {
		metricsReady(ms.URL())
	}
	return func() { _ = ms.Close() }, nil
}

// run is the testable entry point. ready, when non-nil, is called with
// the daemon's listening address once it has joined the directory.
func run(args []string, out io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("dtnnode", flag.ContinueOnError)
	var (
		id       = fs.Int("id", -1, "node id (required, matches the directory's population)")
		dirAddr  = fs.String("dir", "", "directory service address (required)")
		listen   = fs.String("listen", "127.0.0.1:0", "listen address")
		buffer   = fs.Int("buffer", 0, "custody buffer limit (0 = unlimited)")
		spray    = fs.Bool("spray", true, "offer spray copies to non-members while tickets remain")
		timeout  = fs.Duration("timeout", 10*time.Second, "per-connection socket timeout")
		budget   = fs.Duration("contact-budget", 0, "wall-clock cap per contact connection (0 = uncapped)")
		joinWait = fs.Duration("join-wait", 15*time.Second, "keep retrying the directory registration with backoff for this long (0 = a single attempt)")
		metrics  = fs.String("metrics", "", "serve live Prometheus /metrics on this address (enables the observability collector)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id < 0 {
		return fmt.Errorf("missing -id")
	}
	if *dirAddr == "" {
		return fmt.Errorf("missing -dir")
	}
	closeMetrics, err := serveMetricsFlag(*metrics, "dtnnode", out)
	if err != nil {
		return err
	}
	defer closeMetrics()
	d, err := cluster.StartDaemon(cluster.DaemonConfig{
		ID:            *id,
		DirAddr:       *dirAddr,
		ListenAddr:    *listen,
		BufferLimit:   *buffer,
		Spray:         *spray,
		Timeout:       *timeout,
		ContactBudget: *budget,
		JoinWait:      *joinWait,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "dtnnode: node %d joined %s, serving on %s\n", *id, *dirAddr, d.Addr())
	if ready != nil {
		ready(d.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	done := make(chan struct{})
	go func() {
		d.Wait()
		close(done)
	}()
	select {
	case <-sig:
		if err := d.Close(); err != nil {
			return err
		}
		<-done
	case <-done:
	}
	s := d.Node().Stats()
	fmt.Fprintf(out, "dtnnode: node %d done: sent=%d forwarded=%d carried=%d delivered=%d\n",
		*id, s.Sent, s.Forwarded, s.Carried, s.Delivered)
	return nil
}
