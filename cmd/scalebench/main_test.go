package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseNodeCounts(t *testing.T) {
	ns, err := parseNodeCounts("1000, 10000,100000")
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 3 || ns[0] != 1000 || ns[2] != 100000 {
		t.Fatalf("parsed %v", ns)
	}
	for _, bad := range []string{"", "0", "abc", "10,1"} {
		if _, err := parseNodeCounts(bad); err == nil {
			t.Errorf("parseNodeCounts(%q): want error", bad)
		}
	}
}

func TestBenchHorizonClamps(t *testing.T) {
	if h := benchHorizon(1000); h != 86400 {
		t.Errorf("n=1e3: horizon %v, want 86400", h)
	}
	if h := benchHorizon(10000); h != 86400 {
		t.Errorf("n=1e4: horizon %v, want 86400", h)
	}
	if h := benchHorizon(100000); h != 8640 {
		t.Errorf("n=1e5: horizon %v, want 8640", h)
	}
	if h := benchHorizon(1000000); h != 3600 {
		t.Errorf("n=1e6: horizon %v, want 3600 floor", h)
	}
}

// TestRunSmall exercises the full pipeline — generation, rate fit,
// both-queue replay, JSON report, gate — at a small N so it stays fast.
func TestRunSmall(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	var buf bytes.Buffer
	if err := run([]string{"-n", "400", "-reps", "1", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Nodes != 400 || r.Contacts == 0 {
		t.Fatalf("result %+v", r)
	}
	if r.LadderEvtsSec <= 0 || r.HeapEvtsSec <= 0 {
		t.Fatalf("missing throughput: %+v", r)
	}
	if r.BytesPerNode <= 0 {
		t.Fatalf("missing bytes/node: %+v", r)
	}
}

// TestGateImpossible proves the gate path fires: no queue can be 1000x
// faster than the other.
func TestGateImpossible(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-n", "300", "-reps", "1", "-gate", "1000"}, &buf)
	if err == nil {
		t.Fatal("impossible gate passed")
	}
}

func TestRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "nope"}, &buf); err == nil {
		t.Fatal("accepted bad -n")
	}
	if err := run([]string{"-n", "300", "-reps", "0"}, &buf); err == nil {
		t.Fatal("accepted -reps 0")
	}
}
