// Command scalebench measures the simulation core at city scale: for
// each node count it generates a city trace (workload.CityScale), fits
// contact rates on the sparse graph backend, replays every contact
// through the discrete-event scheduler with both queue implementations
// (the production ladder queue and the legacy binary heap), and records
// events/sec and peak bytes/node. The results back BENCH_scale.json
// (see DESIGN.md Sec. 11).
//
// The -gate flag turns the run into a regression check: the ladder
// queue's events/sec must be at least gate x the legacy heap's on the
// same machine in the same process. Comparing the two queues against
// each other keeps the gate machine-independent, unlike an absolute
// events/sec floor.
//
// Usage:
//
//	scalebench -n 1000,10000,100000 -o BENCH_scale.json
//	scalebench -n 10000 -gate 0.9
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/atomicio"
	"repro/internal/des"
	"repro/internal/workload"
)

// Result is the per-node-count benchmark record.
type Result struct {
	Nodes         int     `json:"nodes"`
	HorizonSec    float64 `json:"horizon_sec"`
	Contacts      int     `json:"contacts"`
	SparseGraph   bool    `json:"sparse_graph"`
	BytesPerNode  float64 `json:"bytes_per_node"`
	LadderEvtsSec float64 `json:"ladder_events_per_sec"`
	HeapEvtsSec   float64 `json:"heap_events_per_sec"`
	LadderRatio   float64 `json:"ladder_vs_heap_ratio"`
	GenSec        float64 `json:"generation_sec"`
}

// Report is the BENCH_scale.json document.
type Report struct {
	Seed    uint64   `json:"seed"`
	Reps    int      `json:"reps"`
	Results []Result `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scalebench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scalebench", flag.ContinueOnError)
	var (
		nList   = fs.String("n", "1000,10000,100000", "comma-separated node counts")
		outPath = fs.String("o", "", "write the JSON report to this file (default: stdout)")
		seed    = fs.Uint64("seed", 1, "random seed")
		reps    = fs.Int("reps", 3, "replay repetitions; best run is reported")
		gate    = fs.Float64("gate", 0, "fail unless ladder events/sec >= gate x heap events/sec at every N (0 disables)")
		workers = fs.Int("workers", 0, "trace generation workers (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ns, err := parseNodeCounts(*nList)
	if err != nil {
		return err
	}
	if *reps < 1 {
		return fmt.Errorf("reps must be >= 1, got %d", *reps)
	}

	rep := Report{Seed: *seed, Reps: *reps}
	for _, n := range ns {
		res, err := benchOne(n, *seed, *reps, *workers)
		if err != nil {
			return fmt.Errorf("n=%d: %w", n, err)
		}
		fmt.Fprintf(os.Stderr,
			"scalebench: n=%d contacts=%d sparse=%v bytes/node=%.0f ladder=%.0f ev/s heap=%.0f ev/s ratio=%.2f\n",
			res.Nodes, res.Contacts, res.SparseGraph, res.BytesPerNode,
			res.LadderEvtsSec, res.HeapEvtsSec, res.LadderRatio)
		rep.Results = append(rep.Results, res)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outPath != "" {
		if err := atomicio.WriteFile(*outPath, data, 0o644); err != nil {
			return err
		}
	} else if _, err := out.Write(data); err != nil {
		return err
	}

	if *gate > 0 {
		for _, r := range rep.Results {
			if r.LadderRatio < *gate {
				return fmt.Errorf("gate: n=%d ladder/heap ratio %.3f below %.3f",
					r.Nodes, r.LadderRatio, *gate)
			}
		}
	}
	return nil
}

func parseNodeCounts(s string) ([]int, error) {
	var ns []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad node count %q", f)
		}
		ns = append(ns, n)
	}
	if len(ns) == 0 {
		return nil, fmt.Errorf("no node counts in %q", s)
	}
	return ns, nil
}

// benchHorizon shrinks the trace span as N grows so the contact volume
// (and the wall time) stays roughly constant across node counts: the
// default city geometry has constant average degree, so contacts scale
// with N x horizon.
func benchHorizon(n int) float64 {
	h := 86400 * 1e4 / float64(n)
	if h < 3600 {
		h = 3600
	}
	if h > 86400 {
		h = 86400
	}
	return h
}

func benchOne(n int, seed uint64, reps, workers int) (Result, error) {
	spec := workload.DefaultCitySpec(n)
	spec.Seed = seed
	spec.Horizon = benchHorizon(n)
	spec.Workers = workers

	genStart := time.Now()
	tr, err := workload.CityScale(spec)
	if err != nil {
		return Result{}, err
	}
	g, err := tr.EstimateRates()
	if err != nil {
		return Result{}, err
	}
	genSec := time.Since(genStart).Seconds()

	// Peak live bytes per node with the trace, the fitted graph, and the
	// event times resident — the footprint an experiment at this N pays.
	// A dense matrix at n=1e5 would need 80 GB; the sparse backend keeps
	// this in the tens of KB per node.
	times := make([]float64, len(tr.Contacts))
	for i, c := range tr.Contacts {
		times[i] = c.Start
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	bytesPerNode := float64(ms.HeapAlloc) / float64(n)

	res := Result{
		Nodes:        n,
		HorizonSec:   spec.Horizon,
		Contacts:     len(tr.Contacts),
		SparseGraph:  g.Sparse(),
		BytesPerNode: bytesPerNode,
		GenSec:       genSec,
	}

	res.LadderEvtsSec, err = bestReplay(des.New, times, reps)
	if err != nil {
		return Result{}, err
	}
	res.HeapEvtsSec, err = bestReplay(des.NewLegacyHeap, times, reps)
	if err != nil {
		return Result{}, err
	}
	if res.HeapEvtsSec > 0 {
		res.LadderRatio = res.LadderEvtsSec / res.HeapEvtsSec
	}
	return res, nil
}

// bestReplay schedules every contact time into a fresh scheduler and
// drains it, reps times, returning the best observed events/sec.
func bestReplay(mk func() *des.Scheduler, times []float64, reps int) (float64, error) {
	if len(times) == 0 {
		return 0, fmt.Errorf("empty trace")
	}
	best := 0.0
	for r := 0; r < reps; r++ {
		s := mk()
		dispatched := 0
		start := time.Now()
		for _, t := range times {
			s.At(t, func() { dispatched++ })
		}
		got := s.Run()
		el := time.Since(start).Seconds()
		if got != len(times) || dispatched != len(times) {
			return 0, fmt.Errorf("replay dispatched %d/%d events", dispatched, len(times))
		}
		if evps := float64(got) / el; evps > best {
			best = evps
		}
	}
	return best, nil
}
