// Command cachebench measures the content-addressed result cache
// (internal/resultcache + internal/dispatch) over registry specs: a
// cold run populates a fresh cache, a warm run regenerates every
// artifact from it, and an "edit" run mutates one spec's numerical
// axis to show invalidation staying confined to that spec. The
// results back BENCH_cache.json (see DESIGN.md Sec. 14).
//
// The -gate flag turns the run into a regression check with
// machine-independent criteria: the warm run must compute zero trials
// (cache.misses == 0 and experiment.trials == 0) while producing
// byte-identical artifacts, and the axis edit must leave every other
// spec at zero misses. Wall-clock numbers are reported for context
// but never gated.
//
// Usage:
//
//	cachebench -o BENCH_cache.json
//	cachebench -figs fig04,fig06 -gate
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/atomicio"
	"repro/internal/dispatch"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/scenario"
)

// SpecResult is the per-spec benchmark record.
type SpecResult struct {
	Spec          string  `json:"spec"`
	ColdSec       float64 `json:"cold_sec"`
	WarmSec       float64 `json:"warm_sec"`
	ColdMisses    int64   `json:"cold_misses"`
	WarmHits      int64   `json:"warm_hits"`
	WarmMisses    int64   `json:"warm_misses"`
	WarmTrials    int64   `json:"warm_trials_executed"`
	WarmIdentical bool    `json:"warm_byte_identical"`
	WarmSpeedup   float64 `json:"warm_speedup_fraction"`
	// Edited is true for the spec whose axis the edit phase mutated;
	// EditMisses is that phase's recompute count (must be 0 for every
	// non-edited spec).
	Edited     bool  `json:"edited"`
	EditMisses int64 `json:"edit_misses"`
}

// Report is the BENCH_cache.json document.
type Report struct {
	Benchmark   string       `json:"benchmark"`
	Description string       `json:"description"`
	Command     string       `json:"command"`
	Seed        uint64       `json:"seed"`
	Runs        int          `json:"runs"`
	SecRuns     int          `json:"security_runs"`
	Results     []SpecResult `json:"results"`
	Note        string       `json:"note"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cachebench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cachebench", flag.ContinueOnError)
	var (
		figs    = fs.String("figs", "fig04,fig06", "comma-separated registry spec IDs (synthetic specs only)")
		outPath = fs.String("o", "", "write the JSON report to this file (default: stdout)")
		seed    = fs.Uint64("seed", 1, "experiment seed")
		runs    = fs.Int("runs", 60, "delivery trials per point")
		secRuns = fs.Int("security-runs", 1000, "security trials per point")
		gate    = fs.Bool("gate", false, "fail unless the warm run computes zero trials and the edit stays confined")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs, err := pickSpecs(*figs)
	if err != nil {
		return err
	}
	opt := experiment.DefaultOptions()
	opt.Seed = *seed
	opt.Runs = *runs
	opt.SecurityRuns = *secRuns
	opt.TraceRuns = 5

	cacheDir, err := os.MkdirTemp("", "cachebench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)

	rep := Report{
		Benchmark: "ResultCache",
		Description: fmt.Sprintf(
			"Registry specs %s evaluated cold (fresh content-addressed cache), warm (every trial served from cache), and after a one-spec axis edit (invalidation confined to the edited spec). %d delivery / %d security trials per point, seed %d.",
			*figs, opt.Runs, opt.SecurityRuns, opt.Seed),
		Command: "go run ./cmd/cachebench -figs " + *figs + " -gate",
		Seed:    opt.Seed, Runs: opt.Runs, SecRuns: opt.SecurityRuns,
	}

	// Cold, then warm, over the shared cache directory.
	coldJSON := map[string][]byte{}
	results := map[string]*SpecResult{}
	for _, s := range specs {
		m, err := evalSpec(s, opt, cacheDir, "bench-cold")
		if err != nil {
			return fmt.Errorf("%s cold: %w", s.ID, err)
		}
		if m.misses == 0 {
			return fmt.Errorf("%s cold: computed no trials — spec does not route through the trial cache", s.ID)
		}
		coldJSON[s.ID] = m.json
		results[s.ID] = &SpecResult{Spec: s.ID, ColdSec: m.sec, ColdMisses: m.misses}
	}
	for _, s := range specs {
		m, err := evalSpec(s, opt, cacheDir, "bench-warm")
		if err != nil {
			return fmt.Errorf("%s warm: %w", s.ID, err)
		}
		r := results[s.ID]
		r.WarmSec, r.WarmHits, r.WarmMisses, r.WarmTrials = m.sec, m.hits, m.misses, m.trials
		r.WarmIdentical = bytes.Equal(m.json, coldJSON[s.ID])
		if r.ColdSec > 0 {
			r.WarmSpeedup = 1 - r.WarmSec/r.ColdSec
		}
	}

	// Edit phase: mutate the first spec's last X value and regenerate
	// everything. Only the edited spec may miss.
	edited := specs[0]
	edited.X.Values = append([]float64(nil), edited.X.Values...)
	edited.X.Values[len(edited.X.Values)-1] *= 1.25
	for i, s := range specs {
		if i == 0 {
			s = edited
		}
		m, err := evalSpec(s, opt, cacheDir, "bench-edit")
		if err != nil {
			return fmt.Errorf("%s edit: %w", s.ID, err)
		}
		r := results[s.ID]
		r.Edited = i == 0
		r.EditMisses = m.misses
	}

	for _, s := range specs {
		r := results[s.ID]
		fmt.Fprintf(os.Stderr,
			"cachebench: %-8s cold=%.2fs (%d trials) warm=%.2fs (%d hits, %d misses) speedup=%.1f%% edit_misses=%d\n",
			r.Spec, r.ColdSec, r.ColdMisses, r.WarmSec, r.WarmHits, r.WarmMisses,
			100*r.WarmSpeedup, r.EditMisses)
		rep.Results = append(rep.Results, *r)
	}
	rep.Note = "Gate criteria are machine-independent: warm runs serve every trial from cache (0 misses, 0 runner trials, byte-identical artifacts) and a one-spec axis edit recomputes only that spec. Wall-clock speedup varies with hardware and trial cost; it is reported, not gated."

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outPath != "" {
		if err := atomicio.WriteFile(*outPath, data, 0o644); err != nil {
			return err
		}
	} else if _, err := out.Write(data); err != nil {
		return err
	}

	if *gate {
		for _, r := range rep.Results {
			if r.WarmMisses != 0 || r.WarmTrials != 0 {
				return fmt.Errorf("gate: %s warm run computed %d trials (%d misses); want 0",
					r.Spec, r.WarmTrials, r.WarmMisses)
			}
			if !r.WarmIdentical {
				return fmt.Errorf("gate: %s warm artifact is not byte-identical to cold", r.Spec)
			}
			if r.WarmHits != r.ColdMisses {
				return fmt.Errorf("gate: %s warm hits %d != cold trial count %d",
					r.Spec, r.WarmHits, r.ColdMisses)
			}
			if r.Edited && r.EditMisses == 0 {
				return fmt.Errorf("gate: %s axis edit served stale cached results", r.Spec)
			}
			if !r.Edited && r.EditMisses != 0 {
				return fmt.Errorf("gate: %s recomputed %d trials after a foreign edit; want 0",
					r.Spec, r.EditMisses)
			}
		}
	}
	return nil
}

// pickSpecs resolves comma-separated registry IDs, refusing trace-based
// specs (they need trace files; the cache story is identical anyway).
func pickSpecs(list string) ([]scenario.Scenario, error) {
	byID := map[string]scenario.Scenario{}
	for _, s := range experiment.FigureSpecs() {
		byID[s.ID] = s
	}
	for _, s := range experiment.AblationSpecs() {
		byID[s.ID] = s
	}
	var specs []scenario.Scenario
	for _, id := range strings.Split(list, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		s, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("unknown spec %q", id)
		}
		if s.Measure.Kind == scenario.KindTraceReplay {
			return nil, fmt.Errorf("spec %q is trace-based; use a synthetic spec", id)
		}
		specs = append(specs, s)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no specs in %q", list)
	}
	return specs, nil
}

// measurement is one spec evaluation's wall time, cache traffic, and
// artifact bytes.
type measurement struct {
	sec    float64
	hits   int64
	misses int64
	trials int64
	json   []byte
}

// evalSpec runs one spec through the dispatch layer against the shared
// cache directory under a private obs collector.
func evalSpec(spec scenario.Scenario, opt experiment.Options, cacheDir, owner string) (measurement, error) {
	if obs.Active() != nil {
		return measurement{}, fmt.Errorf("an obs collector is already installed")
	}
	c := obs.NewCollector()
	obs.Install(c)
	defer obs.Install(nil)

	key, err := scenario.ContentKey(&spec, opt)
	if err != nil {
		return measurement{}, err
	}
	store, err := resultcache.Open(cacheDir, key, spec.ID, opt.Seed, owner)
	if err != nil {
		return measurement{}, err
	}
	defer store.Close()
	eng := scenario.NewEngine(opt)
	eng.SuperviseFleet(nil, dispatch.New(store, dispatch.Options{Owner: owner}))
	start := time.Now()
	fig, err := eng.Run(&spec)
	if err != nil {
		return measurement{}, err
	}
	sec := time.Since(start).Seconds()
	js, err := fig.JSON()
	if err != nil {
		return measurement{}, err
	}
	return measurement{
		sec:    sec,
		hits:   c.Get(obs.CacheHits),
		misses: c.Get(obs.CacheMisses),
		trials: c.Get(obs.ExpTrials),
		json:   js,
	}, nil
}
