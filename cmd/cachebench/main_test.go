package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestPickSpecs(t *testing.T) {
	specs, err := pickSpecs("fig04, fig06")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].ID != "fig04" || specs[1].ID != "fig06" {
		t.Fatalf("picked %v", specs)
	}
	for _, bad := range []string{"", "nope", "fig14"} {
		if _, err := pickSpecs(bad); err == nil {
			t.Errorf("pickSpecs(%q): want error", bad)
		}
	}
}

// TestRunSmallGated exercises the full harness — cold, warm, edit,
// JSON report, gate — at small trial counts. The gate passing IS the
// acceptance criterion: warm runs compute nothing and the edit stays
// confined to the edited spec.
func TestRunSmallGated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	err := run([]string{
		"-figs", "fig04,fig06", "-runs", "10", "-security-runs", "100",
		"-o", path, "-gate",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.WarmMisses != 0 || r.WarmTrials != 0 || !r.WarmIdentical {
			t.Errorf("%s: warm run not fully cached: %+v", r.Spec, r)
		}
		if r.Spec == "fig04" && (!r.Edited || r.EditMisses == 0) {
			t.Errorf("fig04 should have been edited and recomputed: %+v", r)
		}
		if r.Spec == "fig06" && (r.Edited || r.EditMisses != 0) {
			t.Errorf("fig06 should have been untouched by the edit: %+v", r)
		}
	}
}
