package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
)

func TestSimEpochSLOVerdicts(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-mode", "sim", "-nodes", "20", "-group", "4",
		"-rate", "1", "-horizon", "120", "-drain", "600",
		"-slo-ratio", "0.5", "-slo-p99", "600",
	}, &buf, nil)
	if err != nil {
		t.Fatalf("passing run failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"SLO: PASS", "p99", "offered"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	err = run([]string{
		"-mode", "sim", "-nodes", "20", "-group", "4",
		"-rate", "1", "-horizon", "120", "-drain", "600",
		"-slo-ratio", "1.1", // unsatisfiable: ratio cannot exceed 1
	}, &buf, nil)
	if err == nil || !strings.Contains(err.Error(), "SLO breached") {
		t.Fatalf("breaching run returned %v, want an SLO-breach error", err)
	}
	if !strings.Contains(buf.String(), "SLO: BREACH") {
		t.Errorf("output missing breach verdict:\n%s", buf.String())
	}
}

func TestFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mode", "warp"}, &buf, nil); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"-mode", "cluster", "-crash", "0.1"}, &buf, nil); err == nil {
		t.Error("cluster mode accepted -crash")
	}
	if err := run([]string{"-bench", filepath.Join(t.TempDir(), "b.json"), "-bench-rates", "zero"}, &buf, nil); err == nil {
		t.Error("malformed -bench-rates accepted")
	}
	if err := run([]string{"-mode", "sim", "-chaos"}, &buf, nil); err == nil {
		t.Error("sim mode accepted -chaos")
	}
	if err := run([]string{"-mode", "cluster", "-chaos-plan", filepath.Join(t.TempDir(), "p.json")}, &buf, nil); err == nil {
		t.Error("-chaos-plan accepted without -chaos")
	}
}

// TestClusterChaosSoak: one cluster epoch under -chaos must survive the
// full turbulence schedule — injected connection faults, partitions,
// and a mid-epoch directory blackout — pass the always-on invariant
// checker, dump a chaos plan that is a pure function of -chaos-seed,
// and account the whole ordeal in the manifest's chaos/retry counter
// families.
func TestClusterChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a TCP cluster")
	}
	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "manifest.json")
	planPath := filepath.Join(dir, "plan.json")
	var buf bytes.Buffer
	err := run([]string{
		"-mode", "cluster", "-nodes", "6", "-group", "2",
		"-relays", "1", "-copies", "2",
		"-rate", "1", "-horizon", "30", "-drain", "60",
		"-ict-min", "1", "-ict-max", "5",
		"-timeout", "10s", "-join-wait", "500ms",
		"-chaos", "-chaos-seed", "42", "-chaos-plan", planPath,
		"-manifest", manifestPath,
	}, &buf, nil)
	if err != nil {
		t.Fatalf("chaos soak failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "chaos armed (seed 42") {
		t.Errorf("chaos banner missing:\n%s", buf.String())
	}

	// Determinism: the dumped plan is exactly NewPlan(seed, nodes) —
	// worker count, timing, and the epoch's outcome never leak into it.
	gotPlan, err := os.ReadFile(planPath)
	if err != nil {
		t.Fatal(err)
	}
	wantPlan := append(chaos.NewPlan(chaos.Config{Seed: 42, Nodes: 6}).JSON(), '\n')
	if !bytes.Equal(gotPlan, wantPlan) {
		t.Errorf("dumped plan is not the deterministic schedule for seed 42:\n got %s\nwant %s", gotPlan, wantPlan)
	}

	raw, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	m, err := obs.ValidateManifestBytes(raw)
	if err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	// The same plan rides in the manifest's config block.
	var withConfig struct {
		Config struct {
			Chaos json.RawMessage `json:"chaos"`
		} `json:"config"`
	}
	if err := json.Unmarshal(raw, &withConfig); err != nil {
		t.Fatal(err)
	}
	var embedded, direct chaos.Plan
	if err := json.Unmarshal(withConfig.Config.Chaos, &embedded); err != nil {
		t.Fatalf("manifest config block has no chaos plan: %v", err)
	}
	if err := json.Unmarshal(bytes.TrimSuffix(gotPlan, []byte("\n")), &direct); err != nil {
		t.Fatal(err)
	}
	if embedded.Seed != 42 || len(embedded.Slots) != len(direct.Slots) || len(embedded.Blackouts) != len(direct.Blackouts) {
		t.Errorf("manifest chaos plan diverges from the -chaos-plan dump: %+v", embedded)
	}

	// The turbulence and self-healing families must all show activity:
	// slot 0 is non-clean so the very first connection injects, the
	// blackout drill crashes the directory at least once, and the
	// proven-to-fail revalidation against the dark directory costs
	// retries and trips a breaker.
	for _, name := range []string{"chaos.injected", "chaos.blackouts", "retry.attempts", "breaker.opens"} {
		v, ok := m.Counter(name)
		if !ok {
			t.Errorf("manifest missing counter %q", name)
			continue
		}
		if v == 0 {
			t.Errorf("%s = 0 after a chaos soak, want nonzero", name)
		}
	}
	// Chaos may delay deliveries, never lose the run: load flowed.
	if v, _ := m.Counter("load.injected"); v == 0 {
		t.Error("chaos soak injected nothing")
	}
	if v, _ := m.Counter("load.delivered"); v == 0 {
		t.Error("chaos soak delivered nothing")
	}
}

// TestClusterMetricsMatchManifest is the end-to-end gate for service
// mode: dtnload drives a live 3-node loopback cluster while serving
// -metrics, the final scrape must be well-formed exposition with
// nonzero contact and custody activity, every scraped total must equal
// the run manifest's, and the metrics server must not leak goroutines
// on shutdown.
func TestClusterMetricsMatchManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a TCP cluster")
	}
	baseline := runtime.NumGoroutine()

	manifestPath := filepath.Join(t.TempDir(), "manifest.json")
	var scrape []byte
	var scrapeURL string
	testBeforeExit = func(url string) {
		scrapeURL = url
		resp, err := http.Get(url)
		if err != nil {
			t.Errorf("scrape: %v", err)
			return
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			t.Errorf("Content-Type = %q, want text format 0.0.4", ct)
		}
		scrape, err = io.ReadAll(resp.Body)
		if err != nil {
			t.Errorf("read scrape: %v", err)
		}
	}
	defer func() { testBeforeExit = nil }()

	var buf bytes.Buffer
	err := run([]string{
		"-mode", "cluster", "-nodes", "3", "-group", "1",
		"-relays", "1", "-copies", "2",
		"-rate", "1", "-horizon", "60", "-drain", "240", "-timeout", "10s",
		"-metrics", "127.0.0.1:0",
		"-manifest", manifestPath,
	}, &buf, nil)
	if err != nil {
		t.Fatalf("cluster run failed: %v\n%s", err, buf.String())
	}
	if scrapeURL == "" || len(scrape) == 0 {
		t.Fatal("metrics endpoint was never scraped")
	}

	exp, err := obs.ParseExposition(scrape)
	if err != nil {
		t.Fatalf("final scrape is not valid exposition: %v", err)
	}

	raw, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	m, err := obs.ValidateManifestBytes(raw)
	if err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}

	// The live cluster must have produced real activity, and the
	// scrape and the manifest must agree on every checked total.
	checks := []struct {
		manifest string
		series   string
		nonzero  bool
	}{
		{"cluster.contacts", "dtn_cluster_contacts_total", true},
		{"cluster.dials", "dtn_cluster_dials_total", true},
		{"node.contacts", "dtn_node_contacts_total", true},
		{"node.handoffs", "dtn_node_handoffs_total", true},
		{"node.custody_high_water", "dtn_node_custody_high_water", true},
		{"load.injected", "dtn_load_injected_total", true},
		{"load.delivered", "dtn_load_delivered_total", true},
		{"load.slo_breaches", "dtn_load_slo_breaches_total", false},
	}
	for _, c := range checks {
		want, ok := m.Counter(c.manifest)
		if !ok {
			t.Errorf("manifest missing counter %q", c.manifest)
			continue
		}
		got, ok := exp.Value(c.series)
		if !ok {
			t.Errorf("scrape missing series %q", c.series)
			continue
		}
		if got != float64(want) {
			t.Errorf("%s: scrape %v != manifest %d", c.series, got, want)
		}
		if c.nonzero && want == 0 {
			t.Errorf("%s: expected nonzero activity", c.manifest)
		}
	}

	// The delivery-latency histogram must be live and coherent with
	// the delivered counter.
	delivered, _ := m.Counter("load.delivered")
	if count, ok := exp.Value(`dtn_load_delivery_latency_ms_count`); !ok || count != float64(delivered) {
		t.Errorf("latency histogram count = %v (ok=%v), want %d", count, ok, delivered)
	}

	// The server is down: the scrape URL must refuse connections and
	// the serving goroutines must drain back to the baseline.
	if _, err := http.Get(scrapeURL); err == nil {
		t.Error("metrics endpoint still serving after run returned")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Errorf("goroutine leak after shutdown: %d > baseline %d", n, baseline)
	}
}

func TestBenchMatrixAndGate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_load.json")
	var buf bytes.Buffer
	err := run([]string{
		"-mode", "sim", "-nodes", "20", "-group", "4",
		"-horizon", "120", "-drain", "480",
		"-bench", path, "-bench-rates", "0.5,1", "-gate", "0.2",
	}, &buf, nil)
	if err != nil {
		t.Fatalf("bench failed: %v\n%s", err, buf.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var bench benchFile
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("bench output not JSON: %v", err)
	}
	if len(bench.Results) != 3 {
		t.Fatalf("got %d results, want 2 fault-free + 1 churn", len(bench.Results))
	}
	churn := bench.Results[len(bench.Results)-1]
	if !churn.Churn || churn.Rate != 1 {
		t.Fatalf("last row = %+v, want the churn re-run of the highest rate", churn)
	}
	for i, r := range bench.Results {
		if r.Injected == 0 || r.MsgsPerSec <= 0 || r.WallNanos <= 0 {
			t.Errorf("row %d has empty measurements: %+v", i, r)
		}
		if r.Delivered > 0 && r.P99Min < r.P50Min {
			t.Errorf("row %d: p99 %.2f < p50 %.2f", i, r.P99Min, r.P50Min)
		}
		if r.Delivered == 0 && r.P99Min != -1 {
			t.Errorf("row %d: undefined quantile not flagged as -1: %+v", i, r)
		}
	}
	if !strings.Contains(buf.String(), "gate ok") {
		t.Errorf("gate verdict missing:\n%s", buf.String())
	}
}
