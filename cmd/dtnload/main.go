// Command dtnload is the sustained-load service mode: it drives an
// open-loop arrival process — plain Poisson or bursty MMPP-2 — through
// either the in-process simulator or a live loopback TCP cluster at a
// configured target rate, and judges the run against service-level
// objectives (delivery ratio, p50/p99 delivery latency). Offered load
// never adapts to how the system copes: that is the defining property
// of an open-loop test, and the reason saturation shows up here while
// a closed-loop driver would silently throttle itself past it.
//
// With -metrics the run doubles as a Prometheus scrape target: the
// fixed-enum observability counters, the delivery-latency histogram,
// and the phase timers are served live in text exposition format, and
// the run manifest written by -manifest reports the same totals, so a
// final scrape and the manifest can be cross-checked number for
// number.
//
// Usage:
//
//	dtnload -mode sim -nodes 40 -rate 1 -horizon 240 -slo-ratio 0.9 -slo-p99 120
//	dtnload -mode cluster -nodes 5 -group 1 -rate 0.5 -metrics 127.0.0.1:9900
//	dtnload -wall 30s -rate 2 -metrics 127.0.0.1:9900   # epochs until wall time is up
//	dtnload -bench BENCH_load.json -bench-rates 0.5,1,2 -gate 0.5
//	dtnload -mode cluster -nodes 5 -group 2 -chaos -chaos-seed 42 -chaos-plan plan.json
//
// With -chaos (cluster mode only) every connection runs through the
// seed-driven turbulence layer — latency, throttling, resets, stalls,
// tears, asymmetric partitions — and each epoch executes the plan's
// scheduled directory blackouts: the directory is crashed at the
// planned point of the contact timeline, the epoch keeps replaying on
// cached membership, and the directory returns at a bumped incarnation
// with every node revalidating against it. The full chaos plan is a
// function of -chaos-seed alone (byte-identical JSON for the same
// seed), is embedded in the -manifest, and can be dumped with
// -chaos-plan for CI determinism byte-compares. Cluster epochs always
// finish with the invariant checker (exactly-once, custody
// conservation, ticket bound, share threshold, incarnation
// monotonicity); any violation fails the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/atomicio"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/cluster/invariant"
	"repro/internal/contact"
	"repro/internal/fault"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "dtnload:", err)
		os.Exit(1)
	}
}

// options collects the parsed flag values for one invocation.
type options struct {
	mode    string
	nodes   int
	group   int
	seed    uint64
	spray   bool
	buffer  int
	reoffer int

	rate       float64
	burst      float64
	burstFrac  float64
	burstDwell float64

	horizon float64
	drain   float64
	ictMin  float64
	ictMax  float64

	relays  int
	copies  int
	payload int
	pad     int
	expiry  float64

	crash    float64
	preserve bool

	slo     workload.SLO
	wall    time.Duration
	timeout time.Duration

	chaosOn       bool
	chaosSeed     uint64
	joinWait      time.Duration
	contactBudget time.Duration
	// plan is armed once per run from -chaos-seed; every cluster epoch
	// realizes the same schedule with a fresh runtime clock.
	plan *chaos.Plan
}

func (o options) arrivals() workload.Arrivals {
	return workload.Arrivals{
		Rate:          o.rate,
		Burst:         o.burst,
		BurstFraction: o.burstFrac,
		BurstDwell:    o.burstDwell,
	}
}

func (o options) spec() workload.OpenLoopSpec {
	return workload.OpenLoopSpec{
		Arrivals:     o.arrivals(),
		Horizon:      o.horizon,
		Drain:        o.drain,
		PayloadSize:  o.payload,
		Relays:       o.relays,
		Copies:       o.copies,
		PadTo:        o.pad,
		ExpiryAfter:  o.expiry,
		Seed:         o.seed,
		TrackBuffers: true,
	}
}

// testBeforeExit, when set by a test, is called after the epoch loop
// (and the manifest write) complete but before the metrics server
// shuts down — the one point where a scrape observes the exact totals
// the manifest recorded.
var testBeforeExit func(scrapeURL string)

// run is the testable entry point. ready, when non-nil, is called once
// the metrics endpoint is serving (with "" when -metrics is off).
func run(args []string, out io.Writer, ready func(metricsURL string)) error {
	fs := flag.NewFlagSet("dtnload", flag.ContinueOnError)
	fs.SetOutput(out)
	var o options
	fs.StringVar(&o.mode, "mode", "sim", `backend: "sim" (in-process network) or "cluster" (live loopback TCP cluster)`)
	fs.IntVar(&o.nodes, "nodes", 40, "population size")
	fs.IntVar(&o.group, "group", 5, "onion group size")
	fs.Uint64Var(&o.seed, "seed", 1, "base seed; epoch e runs with seed+e")
	fs.BoolVar(&o.spray, "spray", true, "spray-and-wait multi-copy forwarding")
	fs.IntVar(&o.buffer, "buffer", 0, "per-node custody buffer limit (0 = unlimited)")
	fs.IntVar(&o.reoffer, "reoffer", 0, "buffer-full refusals a copy survives before it is dropped (0 = unlimited)")
	fs.Float64Var(&o.rate, "rate", 1, "target offered load (messages per sim-minute)")
	fs.Float64Var(&o.burst, "burst", 0, "MMPP burst factor: instantaneous rate in burst state (0 or 1 = plain Poisson)")
	fs.Float64Var(&o.burstFrac, "burst-frac", 0.1, "long-run fraction of time in the burst state")
	fs.Float64Var(&o.burstDwell, "burst-dwell", 5, "mean burst episode length (sim minutes)")
	fs.Float64Var(&o.horizon, "horizon", 240, "injection window per epoch (sim minutes)")
	fs.Float64Var(&o.drain, "drain", 240, "extra contact time after injection stops (sim minutes)")
	fs.Float64Var(&o.ictMin, "ict-min", 1, "minimum pairwise mean inter-contact time (sim minutes)")
	fs.Float64Var(&o.ictMax, "ict-max", 20, "maximum pairwise mean inter-contact time (sim minutes)")
	fs.IntVar(&o.relays, "relays", 2, "onion relay groups per message (K)")
	fs.IntVar(&o.copies, "copies", 2, "spray tickets per message (L)")
	fs.IntVar(&o.payload, "payload", 64, "payload bytes per message")
	fs.IntVar(&o.pad, "pad", 0, "pad onions to this size (0 = none)")
	fs.Float64Var(&o.expiry, "expiry", 0, "per-message relative deadline (sim minutes, 0 = none)")
	fs.Float64Var(&o.crash, "crash", 0, "sim mode: per-contact, per-participant crash probability (node churn)")
	fs.BoolVar(&o.preserve, "preserve-custody", false, "sim mode: crashed nodes keep their custody buffers (persistent storage)")
	fs.Float64Var(&o.slo.MinDeliveryRatio, "slo-ratio", 0, "SLO: minimum delivery ratio (0 = unchecked)")
	fs.Float64Var(&o.slo.MaxP50, "slo-p50", 0, "SLO: maximum median delivery latency (sim minutes, 0 = unchecked)")
	fs.Float64Var(&o.slo.MaxP99, "slo-p99", 0, "SLO: maximum p99 delivery latency (sim minutes, 0 = unchecked)")
	fs.DurationVar(&o.wall, "wall", 0, "keep running epochs until this much wall time has elapsed (0 = one epoch)")
	fs.DurationVar(&o.timeout, "timeout", 10*time.Second, "cluster mode: per-connection socket timeout")
	fs.BoolVar(&o.chaosOn, "chaos", false, "cluster mode: run every connection through the seed-driven turbulence layer and execute scheduled directory blackouts")
	fs.Uint64Var(&o.chaosSeed, "chaos-seed", 0, "chaos schedule seed (0 = use -seed); the full plan is a function of this number alone")
	fs.DurationVar(&o.joinWait, "join-wait", 2*time.Second, "cluster mode: directory (re)registration retry window per attempt burst")
	fs.DurationVar(&o.contactBudget, "contact-budget", 0, "cluster mode: wall-clock cap per contact connection (0 = uncapped)")
	var (
		metricsAddr   = fs.String("metrics", "", "serve Prometheus /metrics on this address for the lifetime of the run")
		manifestPath  = fs.String("manifest", "", "write the observability run manifest here on exit")
		chaosPlanPath = fs.String("chaos-plan", "", "write the armed chaos plan JSON here (requires -chaos)")
		benchPath     = fs.String("bench", "", "benchmark mode: write a BENCH_load.json result matrix here and exit")
		benchRates    = fs.String("bench-rates", "0.5,1,2", "comma-separated target rates for -bench")
		gate          = fs.Float64("gate", 0, "bench gate: churn delivery ratio must stay >= gate x the same-rate fault-free ratio (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if o.mode != "sim" && o.mode != "cluster" {
		return fmt.Errorf("unknown -mode %q (want sim or cluster)", o.mode)
	}
	if o.mode == "cluster" && o.crash > 0 {
		return fmt.Errorf("-crash is sim-only: cluster churn is driven by daemon Kill/Restart, not a probability")
	}
	if o.chaosOn && o.mode != "cluster" {
		return fmt.Errorf("-chaos is cluster-only: turbulence wraps live TCP connections, the sim has its own fault layer (-crash)")
	}
	if *chaosPlanPath != "" && !o.chaosOn {
		return fmt.Errorf("-chaos-plan requires -chaos")
	}

	// Service mode always collects: live metrics are the point. The
	// batch commands keep their obs-off default; this one is obs-on.
	col := obs.NewCollector()
	obs.Install(col)
	startedAt := time.Now()

	if o.chaosOn {
		cs := o.chaosSeed
		if cs == 0 {
			cs = o.seed
		}
		o.plan = chaos.NewPlan(chaos.Config{Seed: cs, Nodes: o.nodes})
		fmt.Fprintf(out, "dtnload: chaos armed (seed %d: %d slots, %d partitions, %d blackouts, relent after %d)\n",
			cs, len(o.plan.Slots), len(o.plan.Partitions), len(o.plan.Blackouts), o.plan.RelentAfter)
		if *chaosPlanPath != "" {
			if err := atomicio.WriteFile(*chaosPlanPath, append(o.plan.JSON(), '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "dtnload: chaos plan written to %s\n", *chaosPlanPath)
		}
	}

	var ms *obs.MetricsServer
	if *metricsAddr != "" {
		var err error
		ms, err = obs.ServeMetrics(*metricsAddr, col)
		if err != nil {
			return err
		}
		defer func() { _ = ms.Close() }()
		fmt.Fprintf(out, "dtnload: serving metrics at %s\n", ms.URL())
	}
	if ready != nil {
		if ms != nil {
			ready(ms.URL())
		} else {
			ready("")
		}
	}

	var runErr error
	if *benchPath != "" {
		runErr = runBench(out, o, *benchPath, *benchRates, *gate)
	} else {
		runErr = runEpochs(out, o, col)
	}

	if *manifestPath != "" {
		m := obs.BuildManifest(col, "dtnload", args, startedAt)
		if o.plan != nil {
			// The full schedule rides in the manifest's config block, so
			// a violated run reproduces from the manifest alone.
			m.Config = chaosConfigBlock{Chaos: o.plan}
		}
		if err := m.WriteFile(*manifestPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "dtnload: manifest written to %s\n", *manifestPath)
	}
	if testBeforeExit != nil && ms != nil {
		testBeforeExit(ms.URL())
	}
	return runErr
}

// runEpochs drives sustained-load epochs until -wall elapses (at least
// one), printing a summary and an SLO verdict per epoch. A breached
// epoch increments load.slo_breaches; any breach fails the run.
func runEpochs(out io.Writer, o options, col *obs.Collector) error {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	start := time.Now()
	epoch, breached := 0, 0
	for {
		seed := o.seed + uint64(epoch)
		end := col.StartPhase("epoch")
		res, err := runOnce(o, seed)
		end()
		if err != nil {
			return fmt.Errorf("epoch %d: %w", epoch, err)
		}
		v := res.CheckSLO(o.slo)
		reportEpoch(out, o, epoch, seed, res, v)
		if !v.Pass {
			breached++
			col.Add(obs.LoadSLOBreaches, 1)
		}
		epoch++
		select {
		case <-sig:
			fmt.Fprintf(out, "dtnload: interrupted after %d epochs\n", epoch)
			return breachErr(breached, epoch)
		default:
		}
		if o.wall <= 0 || time.Since(start) >= o.wall {
			break
		}
	}
	return breachErr(breached, epoch)
}

func breachErr(breached, epochs int) error {
	if breached > 0 {
		return fmt.Errorf("SLO breached in %d of %d epochs", breached, epochs)
	}
	return nil
}

func reportEpoch(out io.Writer, o options, epoch int, seed uint64, res *workload.OpenLoopResult, v workload.SLOVerdict) {
	fmt.Fprintf(out, "epoch %d (seed %d, %s): injected %d (offered %.3f/min, target %.3f/min), delivered %d (ratio %.4f)\n",
		epoch, seed, o.mode, res.Injected, res.OfferedRate, o.rate, res.Delivered, res.DeliveryRatio)
	fmt.Fprintf(out, "  latency p50 %s, p99 %s; peak custody %d onions; refused %d, backpressure-dropped %d\n",
		res.FormatLatency(0.50), res.FormatLatency(0.99), res.PeakBuffered,
		res.Totals.Refused, res.Totals.BackpressureDropped)
	if v.Pass {
		fmt.Fprintf(out, "  SLO: PASS\n")
		return
	}
	fmt.Fprintf(out, "  SLO: BREACH\n")
	for _, b := range v.Breaches {
		fmt.Fprintf(out, "    - %s\n", b)
	}
}

// runOnce executes one epoch on the configured backend.
func runOnce(o options, seed uint64) (*workload.OpenLoopResult, error) {
	if o.mode == "cluster" {
		return runClusterEpoch(o, seed)
	}
	return runSimEpoch(o, seed)
}

// runSimEpoch drives the in-process runtime (real onion cryptography,
// synthetic contacts) with the open-loop schedule.
func runSimEpoch(o options, seed uint64) (*workload.OpenLoopResult, error) {
	nw, err := node.NewNetwork(node.Config{
		Nodes:        o.nodes,
		GroupSize:    o.group,
		Seed:         seed,
		Spray:        o.spray,
		BufferLimit:  o.buffer,
		ReofferLimit: o.reoffer,
		Faults:       fault.Config{Crash: o.crash, PreserveCustody: o.preserve},
	})
	if err != nil {
		return nil, err
	}
	g := contact.NewRandom(o.nodes, o.ictMin, o.ictMax, rng.New(seed).Split("graph"))
	return workload.RunOpenLoop(nw, g, o.specWithSeed(seed))
}

func (o options) specWithSeed(seed uint64) workload.OpenLoopSpec {
	s := o.spec()
	s.Seed = seed
	return s
}

// chaosConfigBlock is the manifest's command-specific config block
// when -chaos is armed.
type chaosConfigBlock struct {
	Chaos *chaos.Plan `json:"chaos"`
}

// runClusterEpoch drives a live loopback cluster: every hand-off a
// real TCP connection, the contact process realized as a trace so the
// drive order is deterministic. Arrivals are injected open-loop at
// their scheduled times as the trace advances past them. Every epoch
// ends with the invariant checker; under -chaos the epoch also
// executes the plan's directory blackouts along the contact timeline.
func runClusterEpoch(o options, seed uint64) (*workload.OpenLoopResult, error) {
	var ch *chaos.Chaos
	if o.plan != nil {
		ch = chaos.FromPlan(o.plan)
	}
	c, err := cluster.Launch(cluster.Config{
		Nodes:         o.nodes,
		GroupSize:     o.group,
		Seed:          seed,
		BufferLimit:   o.buffer,
		ReofferLimit:  o.reoffer,
		Spray:         o.spray,
		Timeout:       o.timeout,
		ContactBudget: o.contactBudget,
		JoinWait:      o.joinWait,
		Chaos:         ch,
	})
	if err != nil {
		return nil, err
	}
	defer func() { _ = c.Close() }()

	root := rng.New(seed)
	g := contact.NewRandom(o.nodes, o.ictMin, o.ictMax, root.Split("graph"))
	times := o.arrivals().Schedule(o.horizon, root.Split("arrivals"))
	endpoints := root.Split("endpoints")

	type loadMsg struct {
		idx      int
		at       float64
		src, dst contact.NodeID
		id       string
	}
	msgs := make([]loadMsg, len(times))
	for i, at := range times {
		src := contact.NodeID(endpoints.IntN(o.nodes))
		dst := contact.NodeID(endpoints.PickOther(o.nodes, int(src)))
		// 32 hex characters, deterministic per (seed, index), so a
		// delivery is identifiable at its destination daemon.
		msgs[i] = loadMsg{idx: i, at: at, src: src, dst: dst, id: fmt.Sprintf("%016x%016x", seed, uint64(i))}
	}

	tr := cluster.RecordSynthetic(g, o.horizon+o.drain, root.Split("contacts"))

	var records []workload.Record
	pending := make(map[string]int)
	paths := root.Split("load-paths")
	inject := func(m loadMsg) error {
		expiry := 0.0
		if o.expiry > 0 {
			expiry = m.at + o.expiry
		}
		_, err := c.Daemon(m.src).Send(node.SendSpec{
			Dst:     m.dst,
			Payload: make([]byte, o.payload),
			Relays:  o.relays,
			Copies:  o.copies,
			Expiry:  expiry,
			PadTo:   o.pad,
			ID:      m.id,
		}, paths.SplitN("path", m.idx))
		if err != nil {
			// Misconfiguration (e.g. too few groups) fails the run —
			// unlike a refusal, nothing was offered to the network.
			return fmt.Errorf("inject message %d: %w", m.idx, err)
		}
		records = append(records, workload.Record{ID: m.id, Src: m.src, Dst: m.dst, SentAt: m.at})
		pending[m.id] = len(records) - 1
		if col := obs.Active(); col != nil {
			col.Add(obs.LoadInjected, 1)
		}
		return nil
	}

	drill := newBlackoutRunner(ch, len(tr.Contacts))

	next := 0
	peak := 0
	for i, ct := range tr.Contacts {
		if err := drill.step(c, i); err != nil {
			return nil, err
		}
		for next < len(msgs) && msgs[next].at <= ct.Start {
			if err := inject(msgs[next]); err != nil {
				return nil, err
			}
			next++
		}
		if ct.A == ct.B {
			continue
		}
		if _, err := c.Daemon(ct.A).Contact(ct.B, c.Daemon(ct.B).Addr(), ct.Start); err != nil {
			return nil, fmt.Errorf("contact %d-%d at t=%.3f: %w", ct.A, ct.B, ct.Start, err)
		}
		for id, idx := range pending {
			rec := &records[idx]
			if _, ok := c.Daemon(rec.Dst).Node().Delivered(id); ok {
				rec.Delivered = true
				rec.DeliveredAt = ct.Start
				delete(pending, id)
				workload.ObserveDelivery(ct.Start - rec.SentAt)
			}
		}
		buffered := 0
		for i := 0; i < o.nodes; i++ {
			buffered += c.Daemon(contact.NodeID(i)).Node().BufferLen()
		}
		if buffered > peak {
			peak = buffered
		}
	}
	// Open-loop accounting: arrivals after the last realized contact
	// are still injected (and counted) — offered load never adapts to
	// the contact process drying up.
	for ; next < len(msgs); next++ {
		if err := inject(msgs[next]); err != nil {
			return nil, err
		}
	}
	// A blackout scheduled to outlast the contact trace still ends with
	// the directory restarted and the fleet reconciled.
	if err := drill.finish(c); err != nil {
		return nil, err
	}

	// Always-on safety: a cluster epoch that breaks exactly-once,
	// conservation, the ticket bound, the share threshold, or
	// incarnation monotonicity fails the run — chaotic or not.
	spec := invariant.Spec{Messages: make([]invariant.Message, len(msgs))}
	for i, m := range msgs {
		spec.Messages[i] = invariant.Message{ID: m.id, Src: m.src, Dst: m.dst, Copies: o.copies}
	}
	if rep := invariant.Check(c, spec); !rep.Clean() {
		return nil, rep.Err()
	}

	res := &workload.OpenLoopResult{
		Records:      records,
		Injected:     len(records),
		PeakBuffered: peak,
		Totals:       c.TotalStats(),
	}
	for _, r := range records {
		if r.Delivered {
			res.Delivered++
			res.Latencies = append(res.Latencies, r.DeliveredAt-r.SentAt)
		}
	}
	if res.Injected > 0 {
		res.DeliveryRatio = float64(res.Delivered) / float64(res.Injected)
	}
	res.OfferedRate = float64(res.Injected) / o.horizon
	return res, nil
}

// blackoutRunner realizes the plan's directory blackouts — expressed
// as run fractions — on the contact-index axis, the epoch's only
// deterministic notion of progress. At an outage's start index the
// directory is crashed and a node's bounded revalidation is proven to
// fail (this is where retry.attempts and breaker.opens accrue); at its
// end index the directory restarts at a bumped incarnation and the
// whole fleet reconciles.
type blackoutRunner struct {
	outages []dirOutage
	dark    bool
}

// dirOutage is one planned blackout mapped to contact indices.
type dirOutage struct{ start, end int }

func newBlackoutRunner(ch *chaos.Chaos, contacts int) *blackoutRunner {
	r := &blackoutRunner{}
	if ch == nil || contacts == 0 {
		return r
	}
	for _, b := range ch.Blackouts() {
		start := int(b.StartFrac * float64(contacts))
		end := int(b.EndFrac * float64(contacts))
		if end <= start {
			end = start + 1
		}
		r.outages = append(r.outages, dirOutage{start: start, end: end})
	}
	return r
}

func (r *blackoutRunner) step(c *cluster.Cluster, i int) error {
	if len(r.outages) == 0 {
		return nil
	}
	switch o := r.outages[0]; {
	case !r.dark && i >= o.start:
		c.Dir().Stop()
		r.dark = true
		if col := obs.Active(); col != nil {
			col.Add(obs.ChaosBlackouts, 1)
		}
		// The join window must fail against a dark directory, not hang
		// — and the failed attempt must not burn the node's incarnation.
		d := c.Nodes()[0]
		before := d.Incarnation()
		if err := d.Revalidate(); err == nil {
			return fmt.Errorf("blackout drill: revalidation succeeded against a dark directory")
		}
		if d.Incarnation() != before {
			return fmt.Errorf("blackout drill: failed revalidation burned incarnation %d -> %d", before, d.Incarnation())
		}
	case r.dark && i >= o.end:
		return r.restore(c)
	}
	return nil
}

// restore brings the directory back and reconciles the fleet.
func (r *blackoutRunner) restore(c *cluster.Cluster) error {
	if err := c.Dir().Restart(); err != nil {
		return fmt.Errorf("blackout drill: restart directory: %w", err)
	}
	if err := c.Revalidate(); err != nil {
		return fmt.Errorf("blackout drill: reconcile after blackout: %w", err)
	}
	r.dark = false
	r.outages = r.outages[1:]
	return nil
}

// finish closes out an outage still open when the trace ends.
func (r *blackoutRunner) finish(c *cluster.Cluster) error {
	if r.dark {
		return r.restore(c)
	}
	return nil
}

// benchResult is one row of the BENCH_load.json matrix.
type benchResult struct {
	Rate        float64 `json:"rate"`
	Churn       bool    `json:"churn"`
	Injected    int     `json:"injected"`
	Delivered   int     `json:"delivered"`
	Ratio       float64 `json:"ratio"`
	OfferedRate float64 `json:"offered_rate"`
	// P50Min/P99Min are sim-minutes; -1 flags "nothing delivered"
	// (the quantile is undefined, not zero).
	P50Min     float64 `json:"p50_min"`
	P99Min     float64 `json:"p99_min"`
	WallNanos  int64   `json:"wall_nanos"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
}

type benchFile struct {
	Seed      uint64        `json:"seed"`
	Mode      string        `json:"mode"`
	Nodes     int           `json:"nodes"`
	GroupSize int           `json:"group_size"`
	Horizon   float64       `json:"horizon_min"`
	Drain     float64       `json:"drain_min"`
	CrashRate float64       `json:"crash_rate"`
	Gate      float64       `json:"gate"`
	Results   []benchResult `json:"results"`
}

// runBench sweeps the configured target rates fault-free, re-runs the
// highest rate with node churn, and writes the matrix atomically. The
// only gated quantity is the paired churn-vs-fault-free delivery
// ratio at the shared rate — a sim-time ratio, so the gate holds on
// any machine; wall-clock throughput is recorded but never gated.
func runBench(out io.Writer, o options, path, ratesCSV string, gate float64) error {
	rates, err := parseRates(ratesCSV)
	if err != nil {
		return err
	}
	if gate < 0 || gate > 1 {
		return fmt.Errorf("-gate %v out of [0,1]", gate)
	}
	crash := o.crash
	if crash <= 0 {
		crash = 0.02
	}

	bench := benchFile{
		Seed: o.seed, Mode: o.mode, Nodes: o.nodes, GroupSize: o.group,
		Horizon: o.horizon, Drain: o.drain, CrashRate: crash, Gate: gate,
	}
	measure := func(rate float64, churn bool) (benchResult, error) {
		ro := o
		ro.rate = rate
		ro.crash = 0
		if churn {
			ro.crash = crash
		}
		start := time.Now()
		res, err := runOnce(ro, o.seed)
		wall := time.Since(start)
		if err != nil {
			return benchResult{}, err
		}
		row := benchResult{
			Rate: rate, Churn: churn,
			Injected: res.Injected, Delivered: res.Delivered,
			Ratio: res.DeliveryRatio, OfferedRate: res.OfferedRate,
			P50Min: -1, P99Min: -1,
			WallNanos:  wall.Nanoseconds(),
			MsgsPerSec: float64(res.Injected) / wall.Seconds(),
		}
		if p50, ok := res.LatencyQuantile(0.50); ok {
			row.P50Min = p50
		}
		if p99, ok := res.LatencyQuantile(0.99); ok {
			row.P99Min = p99
		}
		fmt.Fprintf(out, "bench: rate %.3f/min churn=%v: ratio %.4f, p99 %s, %d msgs in %v (%.0f msgs/sec)\n",
			rate, churn, row.Ratio, res.FormatLatency(0.99), res.Injected, wall.Round(time.Millisecond), row.MsgsPerSec)
		return row, nil
	}

	for _, rate := range rates {
		row, err := measure(rate, false)
		if err != nil {
			return err
		}
		bench.Results = append(bench.Results, row)
	}
	churnRate := rates[len(rates)-1]
	churnRow, err := measure(churnRate, true)
	if err != nil {
		return err
	}
	bench.Results = append(bench.Results, churnRow)

	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	if err := atomicio.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "bench: wrote %d results to %s\n", len(bench.Results), path)

	if gate > 0 {
		var clean benchResult
		for _, r := range bench.Results {
			if !r.Churn && r.Rate == churnRate {
				clean = r
			}
		}
		if churnRow.Ratio < gate*clean.Ratio {
			return fmt.Errorf("bench gate: churn delivery ratio %.4f < %.2f x fault-free %.4f at rate %.3f",
				churnRow.Ratio, gate, clean.Ratio, churnRate)
		}
		fmt.Fprintf(out, "bench: gate ok (churn ratio %.4f >= %.2f x fault-free %.4f)\n",
			churnRow.Ratio, gate, clean.Ratio)
	}
	return nil
}

func parseRates(csv string) ([]float64, error) {
	var rates []float64
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		r, err := strconv.ParseFloat(f, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad -bench-rates entry %q", f)
		}
		rates = append(rates, r)
	}
	if len(rates) < 1 {
		return nil, fmt.Errorf("-bench-rates is empty")
	}
	sort.Float64s(rates)
	return rates, nil
}
