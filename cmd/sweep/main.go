// Command sweep varies one parameter of the onion-routing scenario
// and tabulates delivery, cost, and security metrics (simulation and
// analysis side by side) — the quickest way to explore a tradeoff
// without writing a figure definition.
//
// Usage:
//
//	sweep -param g -values 1,2,5,10
//	sweep -param K -values 1,3,5,10 -deadline 900
//	sweep -param L -values 1,2,3,4,5 -spray
//	sweep -param c -values 0.05,0.1,0.2,0.4
//	sweep -param T -values 60,300,600,1800
//	sweep -param f -values 0,0.1,0.2,0.4
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/internal/atomicio"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// defaultFleetID names this process's cache shard and leases:
// hostname-pid, unique per live process on a shared directory.
func defaultFleetID() string {
	host, err := os.Hostname()
	if err != nil {
		host = "host"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// sweepParams maps each CLI parameter letter to the scenario axis
// param it sweeps.
var sweepParams = map[string]string{
	"g": "GroupSize",
	"K": "Relays",
	"L": "Copies",
	"c": scenario.ParamFrac,
	"T": scenario.ParamDeadline,
	"f": scenario.ParamFault,
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		param       = fs.String("param", "g", "parameter to sweep: g | K | L | c | T | f (contact-failure rate)")
		valuesRaw   = fs.String("values", "1,5,10", "comma-separated values for the swept parameter")
		n           = fs.Int("n", 100, "number of nodes")
		g           = fs.Int("g", 5, "onion group size (when not swept)")
		k           = fs.Int("k", 3, "number of onion groups (when not swept)")
		l           = fs.Int("l", 1, "number of copies (when not swept)")
		spray       = fs.Bool("spray", true, "source spray-and-wait augmentation")
		deadline    = fs.Float64("deadline", 600, "message deadline T, minutes (when not swept)")
		compromised = fs.Float64("compromised", 0.1, "compromised fraction c/n (when not swept)")
		faults      = fs.Float64("faults", 0, "per-contact failure rate in [0,1) (when not swept)")
		runs        = fs.Int("runs", 400, "routed messages per point")
		seed        = fs.Uint64("seed", 1, "root random seed")
		workers     = fs.Int("workers", 0, "concurrent trial workers (0 = GOMAXPROCS); output is identical for any value")
		ckptDir     = fs.String("checkpoint", "", "directory for the sweep's checkpoint file; completed trials persist across interruptions")
		resume      = fs.Bool("resume", false, "load completed trials from -checkpoint and run only the remainder")
		trialTO     = fs.Duration("trial-timeout", 0, "per-trial watchdog: a trial exceeding this is retried once, then quarantined (0 = no watchdog)")
		cacheDir    = fs.String("cache", "", "content-addressed result cache directory; identical sweeps reuse trials across commits, and concurrent processes form a work-stealing fleet")
		leaseTTL    = fs.Duration("lease-ttl", 30*time.Second, "fleet lease staleness bound: a chunk whose holder has not heartbeat within this is stolen")
		fleetID     = fs.String("fleet-id", defaultFleetID(), "worker name for cache shards and leases (default hostname-pid)")
	)
	rf := obs.AddRunFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	values, err := parseValues(*valuesRaw)
	if err != nil {
		return err
	}
	if err := validateParamValues(*param, values); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", *workers)
	}
	if *runs < 1 {
		return fmt.Errorf("-runs must be positive, got %d", *runs)
	}
	axisParam, ok := sweepParams[*param]
	if !ok {
		return fmt.Errorf("unknown parameter %q (want g, K, L, c, T, or f)", *param)
	}
	// Persistence flags fail at validation time, before any computation.
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint DIR")
	}
	if *ckptDir != "" && *cacheDir != "" {
		return fmt.Errorf("-checkpoint and -cache are mutually exclusive (the cache already persists and resumes trials)")
	}
	if *ckptDir != "" {
		if err := atomicio.EnsureDir(*ckptDir); err != nil {
			return fmt.Errorf("-checkpoint: %w", err)
		}
	}
	if *cacheDir != "" {
		if err := atomicio.EnsureDir(*cacheDir); err != nil {
			return fmt.Errorf("-cache: %w", err)
		}
	}
	if *leaseTTL <= 0 {
		return fmt.Errorf("-lease-ttl must be positive, got %v", *leaseTTL)
	}
	obsRun, err := rf.Begin("sweep", args)
	if err != nil {
		return err
	}
	defer obsRun.Abort()

	spec := scenario.Scenario{
		ID: "sweep-" + *param,
		Base: core.Config{
			Nodes: *n, GroupSize: *g, Relays: *k, Copies: *l, Spray: *spray,
			MinICT: 1, MaxICT: 360, Seed: *seed, ContactFailure: *faults,
		},
		X: scenario.Axis{Name: *param, Param: axisParam, Values: values},
		Measure: scenario.Measure{
			Kind:     scenario.KindTable,
			Deadline: *deadline,
			Frac:     *compromised,
		},
	}
	opt := scenario.Options{
		Seed: *seed, Runs: *runs, SecurityRuns: 1, TraceRuns: 1,
		Workers: *workers,
	}

	// Supervision: SIGINT/SIGTERM drain in-flight trials (flushing the
	// checkpoint) instead of losing the run.
	sup := runner.NewSupervisor(*trialTO)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sigDone := make(chan struct{})
	go func() {
		select {
		case s := <-sigc:
			fmt.Fprintf(os.Stderr, "sweep: received %v, draining (completed trials are checkpointed)\n", s)
			obsRun.RecordEvent(obs.RunEvent{Kind: obs.EventInterrupted, Detail: s.String()})
			sup.Stop()
		case <-sigDone:
		}
	}()
	defer func() {
		signal.Stop(sigc)
		close(sigDone)
	}()
	eng := scenario.NewEngine(opt)
	if *cacheDir != "" {
		key, err := scenario.ContentKey(&spec, opt)
		if err != nil {
			return err
		}
		store, err := resultcache.Open(*cacheDir, key, spec.ID, opt.Seed, *fleetID)
		if err != nil {
			return err
		}
		defer store.Close()
		if n := store.Loaded(); n > 0 {
			fmt.Fprintf(os.Stderr, "sweep: cache entry %.12s holds %d completed trials\n", key, n)
		}
		eng.SuperviseFleet(sup, dispatch.New(store, dispatch.Options{
			Owner: *fleetID, LeaseTTL: *leaseTTL,
		}))
	}
	// rs stays a nil interface when no checkpoint is in play; assigning
	// a nil *checkpoint.Store would make it non-nil and panic downstream.
	var rs runner.ResultStore
	if *ckptDir != "" {
		var store *checkpoint.Store
		key, err := scenario.RunKey(&spec, opt)
		if err != nil {
			return err
		}
		path := filepath.Join(*ckptDir, spec.ID+".ckpt")
		_, statErr := os.Stat(path)
		if *resume && statErr == nil {
			store, err = checkpoint.Resume(path, key)
			if err != nil {
				return err
			}
			if n := store.Loaded(); n > 0 {
				fmt.Fprintf(os.Stderr, "sweep: resumed %d completed trials from %s\n", n, path)
				obsRun.RecordEvent(obs.RunEvent{
					Kind:   obs.EventResumed,
					Detail: fmt.Sprintf("%d trials from %s", n, path),
				})
			}
		} else {
			if *resume {
				fmt.Fprintf(os.Stderr, "sweep: no checkpoint at %s, starting fresh\n", path)
			}
			store, err = checkpoint.Create(path, key)
			if err != nil {
				return err
			}
		}
		defer store.Close()
		rs = store
	}
	eng.Supervise(sup, rs)
	fig, err := eng.Run(&spec)
	for _, te := range sup.Quarantined() {
		obsRun.RecordEvent(obs.RunEvent{
			Kind: obs.EventTrialQuarantined, Detail: te.Error(), Batch: te.Batch, Trial: te.Trial,
		})
	}
	if err != nil {
		if errors.Is(err, runner.ErrInterrupted) && *ckptDir != "" {
			return fmt.Errorf("%w; rerun with -resume to continue", err)
		}
		return err
	}

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\tdelivery sim\tdelivery model\ttransmissions\ttraceable sim\ttraceable model\tanonymity sim\tanonymity model\n", *param)
	for i, v := range values {
		fmt.Fprintf(tw, "%v\t%.3f\t%.3f\t%.2f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			v, fig.Series[0].Y[i], fig.Series[1].Y[i], fig.Series[2].Y[i],
			fig.Series[3].Y[i], fig.Series[4].Y[i], fig.Series[5].Y[i], fig.Series[6].Y[i])
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	type manifestConfig struct {
		Param       string    `json:"param"`
		Values      []float64 `json:"values"`
		Nodes       int       `json:"nodes"`
		GroupSize   int       `json:"groupSize"`
		Relays      int       `json:"relays"`
		Copies      int       `json:"copies"`
		Spray       bool      `json:"spray"`
		Deadline    float64   `json:"deadline"`
		Compromised float64   `json:"compromised"`
		Runs        int       `json:"runs"`
		Cache       string    `json:"cache,omitempty"`
		FleetID     string    `json:"fleetId,omitempty"`
	}
	mc := manifestConfig{
		Param: *param, Values: values, Nodes: *n, GroupSize: *g, Relays: *k,
		Copies: *l, Spray: *spray, Deadline: *deadline, Compromised: *compromised,
		Runs: *runs, Cache: *cacheDir,
	}
	if *cacheDir != "" {
		mc.FleetID = *fleetID
	}
	return obsRun.Finish(mc, *seed, *workers, *faults)
}

// validateParamValues rejects sweep values that the integer-valued
// parameters (g, K, L) would otherwise silently truncate: before this
// check, `-param g -values 2.5` ran g=2 without any diagnostic.
func validateParamValues(param string, values []float64) error {
	switch param {
	case "g", "K", "L":
		for _, v := range values {
			if v != math.Trunc(v) {
				return fmt.Errorf("parameter %q takes integer values, got %v", param, v)
			}
			if v < math.MinInt32 || v > math.MaxInt32 {
				return fmt.Errorf("parameter %q value %v out of integer range", param, v)
			}
		}
	}
	return nil
}

func parseValues(raw string) ([]float64, error) {
	parts := strings.Split(raw, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values to sweep")
	}
	return out, nil
}
