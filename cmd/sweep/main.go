// Command sweep varies one parameter of the onion-routing scenario
// and tabulates delivery, cost, and security metrics (simulation and
// analysis side by side) — the quickest way to explore a tradeoff
// without writing a figure definition.
//
// Usage:
//
//	sweep -param g -values 1,2,5,10
//	sweep -param K -values 1,3,5,10 -deadline 900
//	sweep -param L -values 1,2,3,4,5 -spray
//	sweep -param c -values 0.05,0.1,0.2,0.4
//	sweep -param T -values 60,300,600,1800
//	sweep -param f -values 0,0.1,0.2,0.4
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

type point struct {
	value       float64
	simDelivery float64
	modDelivery float64
	simTx       float64
	simTrace    float64
	modTrace    float64
	simAnon     float64
	modAnon     float64
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		param       = fs.String("param", "g", "parameter to sweep: g | K | L | c | T | f (contact-failure rate)")
		valuesRaw   = fs.String("values", "1,5,10", "comma-separated values for the swept parameter")
		n           = fs.Int("n", 100, "number of nodes")
		g           = fs.Int("g", 5, "onion group size (when not swept)")
		k           = fs.Int("k", 3, "number of onion groups (when not swept)")
		l           = fs.Int("l", 1, "number of copies (when not swept)")
		spray       = fs.Bool("spray", true, "source spray-and-wait augmentation")
		deadline    = fs.Float64("deadline", 600, "message deadline T, minutes (when not swept)")
		compromised = fs.Float64("compromised", 0.1, "compromised fraction c/n (when not swept)")
		faults      = fs.Float64("faults", 0, "per-contact failure rate in [0,1) (when not swept)")
		runs        = fs.Int("runs", 400, "routed messages per point")
		seed        = fs.Uint64("seed", 1, "root random seed")
		workers     = fs.Int("workers", 0, "concurrent trial workers (0 = GOMAXPROCS); output is identical for any value")
	)
	rf := obs.AddRunFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	values, err := parseValues(*valuesRaw)
	if err != nil {
		return err
	}
	if err := validateParamValues(*param, values); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", *workers)
	}
	if *runs < 1 {
		return fmt.Errorf("-runs must be positive, got %d", *runs)
	}
	obsRun, err := rf.Begin("sweep", args)
	if err != nil {
		return err
	}
	defer obsRun.Abort()

	var points []point
	for _, v := range values {
		endPhase := obs.Current().StartPhase(fmt.Sprintf("%s=%v", *param, v))
		cfg := core.Config{
			Nodes: *n, GroupSize: *g, Relays: *k, Copies: *l, Spray: *spray,
			MinICT: 1, MaxICT: 360, Seed: *seed, ContactFailure: *faults,
		}
		dl, frac := *deadline, *compromised
		switch *param {
		case "g":
			cfg.GroupSize = int(v)
		case "K":
			cfg.Relays = int(v)
		case "L":
			cfg.Copies = int(v)
		case "c":
			frac = v
		case "T":
			dl = v
		case "f":
			cfg.ContactFailure = v
		default:
			return fmt.Errorf("unknown parameter %q (want g, K, L, c, T, or f)", *param)
		}
		p, err := evaluate(cfg, dl, frac, *runs, *workers, v)
		endPhase()
		if err != nil {
			return fmt.Errorf("%s=%v: %w", *param, v, err)
		}
		points = append(points, p)
	}

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\tdelivery sim\tdelivery model\ttransmissions\ttraceable sim\ttraceable model\tanonymity sim\tanonymity model\n", *param)
	for _, p := range points {
		fmt.Fprintf(tw, "%v\t%.3f\t%.3f\t%.2f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			p.value, p.simDelivery, p.modDelivery, p.simTx,
			p.simTrace, p.modTrace, p.simAnon, p.modAnon)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	type manifestConfig struct {
		Param       string    `json:"param"`
		Values      []float64 `json:"values"`
		Nodes       int       `json:"nodes"`
		GroupSize   int       `json:"groupSize"`
		Relays      int       `json:"relays"`
		Copies      int       `json:"copies"`
		Spray       bool      `json:"spray"`
		Deadline    float64   `json:"deadline"`
		Compromised float64   `json:"compromised"`
		Runs        int       `json:"runs"`
	}
	return obsRun.Finish(manifestConfig{
		Param: *param, Values: values, Nodes: *n, GroupSize: *g, Relays: *k,
		Copies: *l, Spray: *spray, Deadline: *deadline, Compromised: *compromised,
		Runs: *runs,
	}, *seed, *workers, *faults)
}

// validateParamValues rejects sweep values that the integer-valued
// parameters (g, K, L) would otherwise silently truncate: before this
// check, `-param g -values 2.5` ran g=2 without any diagnostic.
func validateParamValues(param string, values []float64) error {
	switch param {
	case "g", "K", "L":
		for _, v := range values {
			if v != math.Trunc(v) {
				return fmt.Errorf("parameter %q takes integer values, got %v", param, v)
			}
			if v < math.MinInt32 || v > math.MaxInt32 {
				return fmt.Errorf("parameter %q value %v out of integer range", param, v)
			}
		}
	}
	return nil
}

func parseValues(raw string) ([]float64, error) {
	parts := strings.Split(raw, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values to sweep")
	}
	return out, nil
}

func evaluate(cfg core.Config, deadline, frac float64, runs, workers int, v float64) (point, error) {
	nw, err := core.NewNetwork(cfg)
	if err != nil {
		return point{}, err
	}
	p := point{
		value:    v,
		modTrace: nw.ModelTraceableRate(frac),
		modAnon:  nw.ModelPathAnonymity(frac),
	}
	type trialOut struct {
		delivered              bool
		model, tx, trace, anon float64
	}
	trials, err := experiment.MapTrials(workers, runs, func(i int) (trialOut, error) {
		trial, err := nw.NewTrial(i)
		if err != nil {
			return trialOut{}, err
		}
		res, err := nw.Route(trial, deadline, true, i)
		if err != nil {
			return trialOut{}, err
		}
		// Thinned model: identical to ModelDelivery when the
		// contact-failure rate is zero.
		m, err := nw.ModelDeliveryLossy(trial, deadline)
		if err != nil {
			return trialOut{}, err
		}
		sec, err := nw.FastSecurityTrial(frac, i)
		if err != nil {
			return trialOut{}, err
		}
		return trialOut{
			delivered: res.Delivered,
			model:     m,
			tx:        float64(res.Transmissions),
			trace:     sec.TraceableRate,
			anon:      sec.PathAnonymity,
		}, nil
	})
	if err != nil {
		return point{}, err
	}
	var delivered int
	var model, tx, tr, an stats.Accumulator
	for _, to := range trials {
		if to.delivered {
			delivered++
		}
		model.Add(to.model)
		tx.Add(to.tx)
		tr.Add(to.trace)
		an.Add(to.anon)
	}
	p.simDelivery = float64(delivered) / float64(runs)
	p.modDelivery = model.Mean()
	p.simTx = tx.Mean()
	p.simTrace = tr.Mean()
	p.simAnon = an.Mean()
	return p, nil
}
