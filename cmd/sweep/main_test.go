package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSweepGroupSize(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-param", "g", "-values", "1,5", "-n", "40", "-runs", "60", "-deadline", "400"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + 2 points
		t.Fatalf("output:\n%s", buf.String())
	}
	if !strings.HasPrefix(lines[0], "g") {
		t.Fatalf("header: %q", lines[0])
	}
}

func TestSweepEachParameter(t *testing.T) {
	for _, p := range []string{"K", "L", "c", "T"} {
		var buf bytes.Buffer
		values := "1,2"
		if p == "c" {
			values = "0.1,0.3"
		}
		if p == "T" {
			values = "100,500"
		}
		err := run([]string{"-param", p, "-values", values, "-n", "30", "-runs", "30"}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
}

// TestSweepRejectsFractionalIntegerParams pins the fix for the silent
// int(v) truncation: `-param g -values 2.5` used to run g=2 with no
// diagnostic. Each integer-valued parameter must reject fractional
// values; the float-valued parameters must keep accepting them.
func TestSweepRejectsFractionalIntegerParams(t *testing.T) {
	for _, p := range []string{"g", "K", "L"} {
		var buf bytes.Buffer
		err := run([]string{"-param", p, "-values", "2.5", "-n", "30", "-runs", "10"}, &buf)
		if err == nil {
			t.Errorf("%s: fractional sweep value accepted (would silently truncate)", p)
			continue
		}
		if !strings.Contains(err.Error(), "integer") {
			t.Errorf("%s: error %q does not mention the integer requirement", p, err)
		}
	}
	// Huge values must not wrap when cast to int.
	var buf bytes.Buffer
	if err := run([]string{"-param", "g", "-values", "1e18", "-n", "30", "-runs", "10"}, &buf); err == nil {
		t.Error("out-of-range integer sweep value accepted")
	}
	// Float-valued parameters still accept fractions.
	for _, tc := range []struct{ p, v string }{{"c", "0.15"}, {"T", "250.5"}, {"f", "0.25"}} {
		var buf bytes.Buffer
		if err := run([]string{"-param", tc.p, "-values", tc.v, "-n", "30", "-runs", "10"}, &buf); err != nil {
			t.Errorf("%s=%s rejected: %v", tc.p, tc.v, err)
		}
	}
}

func TestSweepRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-param", "q", "-values", "1"}, &buf); err == nil {
		t.Fatal("accepted unknown parameter")
	}
	if err := run([]string{"-param", "g", "-values", "x"}, &buf); err == nil {
		t.Fatal("accepted unparsable values")
	}
	if err := run([]string{"-param", "g", "-values", ","}, &buf); err == nil {
		t.Fatal("accepted empty values")
	}
	if err := run([]string{"-param", "g", "-values", "0"}, &buf); err == nil {
		t.Fatal("accepted invalid group size")
	}
}

// TestSweepCheckpointResume pins the crash-safety wiring: a sweep run
// with -checkpoint can be rerun with -resume (all trials served from
// the checkpoint) and prints a byte-identical table; -resume without
// -checkpoint is refused; a foreign checkpoint (different seed) is
// rejected loudly.
func TestSweepCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-param", "g", "-values", "1,5", "-n", "30", "-runs", "10",
		"-checkpoint", dir, "-seed", "1",
	}
	var first bytes.Buffer
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "sweep-g.ckpt")); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}
	var resumed bytes.Buffer
	if err := run(append(args, "-resume"), &resumed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), resumed.Bytes()) {
		t.Fatalf("resumed table differs:\n%s\nvs\n%s", resumed.String(), first.String())
	}

	if err := run([]string{"-param", "g", "-values", "1", "-resume"}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "-checkpoint") {
		t.Fatalf("-resume without -checkpoint: err = %v, want flag error", err)
	}
	foreign := append(append([]string(nil), args...), "-resume")
	for i, a := range foreign {
		if a == "-seed" {
			foreign[i+1] = "2"
		}
	}
	if err := run(foreign, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("foreign checkpoint: err = %v, want key mismatch", err)
	}
}
