package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSweepGroupSize(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-param", "g", "-values", "1,5", "-n", "40", "-runs", "60", "-deadline", "400"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + 2 points
		t.Fatalf("output:\n%s", buf.String())
	}
	if !strings.HasPrefix(lines[0], "g") {
		t.Fatalf("header: %q", lines[0])
	}
}

func TestSweepEachParameter(t *testing.T) {
	for _, p := range []string{"K", "L", "c", "T"} {
		var buf bytes.Buffer
		values := "1,2"
		if p == "c" {
			values = "0.1,0.3"
		}
		if p == "T" {
			values = "100,500"
		}
		err := run([]string{"-param", p, "-values", values, "-n", "30", "-runs", "30"}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
}

func TestSweepRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-param", "q", "-values", "1"}, &buf); err == nil {
		t.Fatal("accepted unknown parameter")
	}
	if err := run([]string{"-param", "g", "-values", "x"}, &buf); err == nil {
		t.Fatal("accepted unparsable values")
	}
	if err := run([]string{"-param", "g", "-values", ","}, &buf); err == nil {
		t.Fatal("accepted empty values")
	}
	if err := run([]string{"-param", "g", "-values", "0"}, &buf); err == nil {
		t.Fatal("accepted invalid group size")
	}
}
