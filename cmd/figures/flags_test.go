package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPersistenceFlagValidation pins the loud flag-time failures of
// the persistence options: they must reject before any trial runs, so
// a mistyped path never silently computes without persistence.
func TestPersistenceFlagValidation(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{
			name:    "resume without checkpoint",
			args:    []string{"-fig", "fig06", "-resume"},
			wantErr: "-resume requires -checkpoint",
		},
		{
			name:    "checkpoint at a regular file",
			args:    []string{"-fig", "fig06", "-checkpoint", file},
			wantErr: "not a directory",
		},
		{
			name:    "cache at a regular file",
			args:    []string{"-fig", "fig06", "-cache", file},
			wantErr: "not a directory",
		},
		{
			name:    "checkpoint and cache together",
			args:    []string{"-fig", "fig06", "-checkpoint", t.TempDir(), "-cache", t.TempDir()},
			wantErr: "mutually exclusive",
		},
		{
			name:    "non-positive lease ttl",
			args:    []string{"-fig", "fig06", "-cache", t.TempDir(), "-lease-ttl", "0s"},
			wantErr: "-lease-ttl must be positive",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, os.Stdout)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v; want substring %q", err, tc.wantErr)
			}
		})
	}
}
