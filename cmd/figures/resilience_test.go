package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// execArgsEnv re-execs the test binary as the figures CLI: when set,
// TestMain runs run() with the JSON-decoded args instead of the tests.
// This is how the kill/resume suite gets a real process to SIGKILL.
const execArgsEnv = "FIGURES_EXEC_ARGS"

func TestMain(m *testing.M) {
	if argsJSON := os.Getenv(execArgsEnv); argsJSON != "" {
		var args []string
		if err := json.Unmarshal([]byte(argsJSON), &args); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(2)
		}
		if err := run(args, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// figuresCmd builds an exec.Cmd that re-runs this test binary as the
// figures CLI with the given arguments.
func figuresCmd(t *testing.T, args []string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	argsJSON, err := json.Marshal(args)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), execArgsEnv+"="+string(argsJSON))
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	return cmd, &stderr
}

// tmpDroppings lists atomic-write temp files left in dir — there must
// never be any, whatever happened to the process.
func tmpDroppings(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestKillResumeByteIdentical is the crash-safety acceptance test: a
// figures run SIGKILLed at a seeded random point and resumed from its
// checkpoint produces artifacts byte-identical to an uninterrupted run,
// across seeds and worker counts (resume may happen at a different
// -workers value than the interrupted run used).
func TestKillResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills subprocesses")
	}
	var midRunKills int64
	for _, seed := range []uint64{1, 42} {
		for _, workers := range []int{1, 4} {
			seed, workers := seed, workers
			t.Run(fmt.Sprintf("seed%d-workers%d", seed, workers), func(t *testing.T) {
				t.Parallel()
				base := []string{
					"-fig", "fig06", "-no-plot", "-json",
					"-runs", "40", "-security-runs", "4000", "-trace-runs", "5",
					"-seed", fmt.Sprint(seed), "-workers", fmt.Sprint(workers),
				}
				goldenDir := t.TempDir()
				if err := run(append([]string{"-out", goldenDir}, base...), os.Stdout); err != nil {
					t.Fatal(err)
				}
				goldenCSV, err := os.ReadFile(filepath.Join(goldenDir, "fig06.csv"))
				if err != nil {
					t.Fatal(err)
				}
				goldenJSON, err := os.ReadFile(filepath.Join(goldenDir, "fig06.json"))
				if err != nil {
					t.Fatal(err)
				}

				outDir, ckptDir := t.TempDir(), t.TempDir()
				args := append([]string{"-out", outDir, "-checkpoint", ckptDir}, base...)
				// Seeded random kill point somewhere inside the run.
				rnd := rand.New(rand.NewSource(int64(seed)*31 + int64(workers)))
				delay := 150*time.Millisecond + time.Duration(rnd.Int63n(int64(600*time.Millisecond)))
				victim, _ := figuresCmd(t, args)
				if err := victim.Start(); err != nil {
					t.Fatal(err)
				}
				time.Sleep(delay)
				_ = victim.Process.Kill() // SIGKILL: no cleanup runs
				if err := victim.Wait(); err != nil {
					atomic.AddInt64(&midRunKills, 1)
				} else {
					t.Logf("run finished in under %v; resume will replay a complete checkpoint", delay)
				}
				if left := tmpDroppings(t, outDir); len(left) != 0 {
					t.Fatalf("SIGKILL left temp artifacts: %v", left)
				}

				// Resume at a different worker count than the victim ran.
				resumeArgs := append([]string(nil), args...)
				for i, a := range resumeArgs {
					if a == "-workers" {
						resumeArgs[i+1] = fmt.Sprint(workers%4 + 1)
					}
				}
				resume, stderr := figuresCmd(t, append(resumeArgs, "-resume"))
				if err := resume.Run(); err != nil {
					t.Fatalf("resume failed: %v\n%s", err, stderr.String())
				}
				if strings.Contains(stderr.String(), "resumed") {
					t.Logf("resume loaded checkpointed trials (%s)", strings.TrimSpace(stderr.String()))
				}

				gotCSV, err := os.ReadFile(filepath.Join(outDir, "fig06.csv"))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gotCSV, goldenCSV) {
					t.Errorf("resumed CSV differs from uninterrupted golden (%d vs %d bytes)", len(gotCSV), len(goldenCSV))
				}
				gotJSON, err := os.ReadFile(filepath.Join(outDir, "fig06.json"))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gotJSON, goldenJSON) {
					t.Errorf("resumed JSON differs from uninterrupted golden (%d vs %d bytes)", len(gotJSON), len(goldenJSON))
				}
				if left := tmpDroppings(t, outDir); len(left) != 0 {
					t.Fatalf("resume left temp artifacts: %v", left)
				}
			})
		}
	}
	t.Cleanup(func() {
		if !t.Failed() && atomic.LoadInt64(&midRunKills) == 0 {
			t.Error("no subprocess was killed mid-run; the kill window no longer overlaps the run — retune the delays")
		}
	})
}

// TestCSVWriteFailureLeavesNoPartial pins satellite (b): when the CSV
// write fails mid-run (here: a directory squats on the target path),
// the command errors out without leaving partial or temp files.
func TestCSVWriteFailureLeavesNoPartial(t *testing.T) {
	dir := t.TempDir()
	if err := os.Mkdir(filepath.Join(dir, "fig04.csv"), 0o755); err != nil {
		t.Fatal(err)
	}
	err := run([]string{
		"-fig", "fig04", "-out", dir, "-no-plot",
		"-runs", "10", "-security-runs", "30", "-trace-runs", "5",
	}, os.Stdout)
	if err == nil {
		t.Fatal("run succeeded with an unwritable CSV path")
	}
	if left := tmpDroppings(t, dir); len(left) != 0 {
		t.Fatalf("failed write left temp artifacts: %v", left)
	}
}

// TestResumeRequiresCheckpoint pins the flag contract: -resume without
// -checkpoint is a loud error, not a silent fresh run.
func TestResumeRequiresCheckpoint(t *testing.T) {
	err := run([]string{"-fig", "fig04", "-no-plot", "-resume"}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "-checkpoint") {
		t.Fatalf("err = %v, want a -checkpoint requirement", err)
	}
}

// TestForeignCheckpointRefused pins loud key rejection end to end: a
// checkpoint recorded at one seed must refuse to resume another.
func TestForeignCheckpointRefused(t *testing.T) {
	ckptDir := t.TempDir()
	base := []string{
		"-fig", "fig04", "-no-plot", "-checkpoint", ckptDir,
		"-runs", "10", "-security-runs", "30", "-trace-runs", "5",
	}
	if err := run(append(base, "-seed", "1"), os.Stdout); err != nil {
		t.Fatal(err)
	}
	err := run(append(base, "-seed", "2", "-resume"), os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("err = %v, want checkpoint key mismatch", err)
	}
}

// TestQuarantineLandsInManifest pins the acceptance criterion end to
// end: a spec whose trial panics exits nonzero naming the trial, while
// the manifest records the quarantine event and still validates.
func TestQuarantineLandsInManifest(t *testing.T) {
	scenario.RegisterCustom("test-figures-panic", func(e *scenario.Engine, s *scenario.Scenario) ([]stats.Series, []string, error) {
		_, err := scenario.Trials(e, s.ID+"/boom", 6, func(i int) (float64, error) {
			if i == 3 {
				panic("injected figure panic")
			}
			return float64(i), nil
		})
		if err != nil {
			return nil, nil, err
		}
		return []stats.Series{{Name: "x", X: []float64{0}, Y: []float64{0}, CI: []float64{0}}}, nil, nil
	})
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(spec, []byte(`{
		"id": "panic-e2e", "title": "t", "xLabel": "x", "yLabel": "y",
		"measure": {"kind": "custom", "custom": "test-figures-panic"}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, "manifest.json")
	err := run([]string{"-scenario", spec, "-no-plot", "-manifest", manifest}, os.Stdout)
	if err == nil {
		t.Fatal("panicking trial did not fail the run")
	}
	if !strings.Contains(err.Error(), "trial 3") || !strings.Contains(err.Error(), "panic-e2e/boom") {
		t.Fatalf("error does not identify the trial: %v", err)
	}
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("manifest missing after quarantine: %v", err)
	}
	m, err := obs.ValidateManifestBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, ev := range m.Events {
		if ev.Kind == obs.EventTrialQuarantined && ev.Batch == "panic-e2e/boom" && ev.Trial == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("manifest events lack the quarantine: %+v", m.Events)
	}
}
