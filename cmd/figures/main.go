// Command figures regenerates the paper's evaluation figures
// (Figs. 4-19). For each figure it can print an ASCII plot and write a
// tidy CSV next to it. Runs are crash-safe: with -checkpoint, every
// completed trial is persisted and an interrupted run resumes via
// -resume with byte-identical final artifacts.
//
// With -cache instead, trials persist in a content-addressed result
// cache keyed by the spec's numerical inputs (never the git revision
// or presentation fields), so completed work survives commits and is
// shared: any number of processes pointed at the same cache directory
// split the trial range via work-stealing leases and every one emits
// artifacts byte-identical to a single-process run. No -resume flag
// exists for the cache — reruns resume implicitly.
//
// Usage:
//
//	figures -fig all -out results/
//	figures -fig fig11 -runs 1000
//	figures -fig fig04 -manifest out.json -cpuprofile cpu.prof
//	figures -fig fig04 -checkpoint .ckpt     # Ctrl-C safe
//	figures -fig fig04 -checkpoint .ckpt -resume
//	figures -fig fig04 -cache .cache         # content-addressed, shareable
//	figures -fig fig04 -cache .cache -fleet-id worker-b  # fleet member
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/atomicio"
	"repro/internal/checkpoint"
	"repro/internal/dispatch"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// defaultFleetID names this process's cache shard and leases:
// hostname-pid, unique per live process on a shared directory.
func defaultFleetID() string {
	host, err := os.Hostname()
	if err != nil {
		host = "host"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	var (
		figID        = fs.String("fig", "all", "figure to generate: fig04..fig19, a number like 11, an ablation-* id, 'all', 'ablations', or 'everything'")
		outDir       = fs.String("out", "", "directory for CSV output (omit to skip CSV)")
		runs         = fs.Int("runs", 0, "routed messages per delivery/cost point (0 = default)")
		securityRuns = fs.Int("security-runs", 0, "sampled paths per security point (0 = default)")
		traceRuns    = fs.Int("trace-runs", 0, "routed messages per trace figure (0 = default)")
		seed         = fs.Uint64("seed", 1, "root random seed")
		workers      = fs.Int("workers", 0, "concurrent trial workers per figure (0 = GOMAXPROCS); output is identical for any value")
		faults       = fs.Float64("faults", 0, "fault-injection rate in [0,1) applied to every figure (0 = pristine; ablation-faults sweeps internally)")
		specPath     = fs.String("scenario", "", "JSON scenario spec file (one object or an array); overrides -fig")
		noPlot       = fs.Bool("no-plot", false, "suppress ASCII plots")
		jsonOut      = fs.Bool("json", false, "also write .json files when -out is set")
		parallel     = fs.Int("parallel", 1, "figures generated concurrently")
		width        = fs.Int("width", 72, "plot width")
		height       = fs.Int("height", 18, "plot height")
		ckptDir      = fs.String("checkpoint", "", "directory for per-figure checkpoint files; completed trials persist across interruptions")
		resume       = fs.Bool("resume", false, "load completed trials from -checkpoint and run only the remainder (byte-identical to an uninterrupted run at any -workers)")
		trialTimeout = fs.Duration("trial-timeout", 0, "per-trial watchdog: a trial exceeding this is retried once, then quarantined (0 = no watchdog)")
		cacheDir     = fs.String("cache", "", "content-addressed result cache directory; unchanged specs reuse trials across commits, and concurrent processes on the same directory form a work-stealing fleet")
		leaseTTL     = fs.Duration("lease-ttl", 30*time.Second, "fleet lease staleness bound: a chunk whose holder has not heartbeat within this is stolen")
		fleetID      = fs.String("fleet-id", defaultFleetID(), "worker name for cache shards and leases (default hostname-pid)")
	)
	rf := obs.AddRunFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Create the output directory before Begin so profile/manifest
	// paths under -out resolve.
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("create output dir: %w", err)
		}
	}
	// Persistence flags are validated before any computation: a -resume
	// with nowhere to resume from, a -checkpoint/-cache path occupied by
	// a regular file, or both persistence modes at once all fail here.
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint DIR")
	}
	if *ckptDir != "" && *cacheDir != "" {
		return fmt.Errorf("-checkpoint and -cache are mutually exclusive (the cache already persists and resumes trials)")
	}
	if *ckptDir != "" {
		if err := atomicio.EnsureDir(*ckptDir); err != nil {
			return fmt.Errorf("-checkpoint: %w", err)
		}
	}
	if *cacheDir != "" {
		if err := atomicio.EnsureDir(*cacheDir); err != nil {
			return fmt.Errorf("-cache: %w", err)
		}
	}
	if *leaseTTL <= 0 {
		return fmt.Errorf("-lease-ttl must be positive, got %v", *leaseTTL)
	}
	obsRun, err := rf.Begin("figures", args)
	if err != nil {
		return err
	}
	defer obsRun.Abort()

	opt := experiment.DefaultOptions()
	opt.Seed = *seed
	if *runs > 0 {
		opt.Runs = *runs
	}
	if *securityRuns > 0 {
		opt.SecurityRuns = *securityRuns
	}
	if *traceRuns > 0 {
		opt.TraceRuns = *traceRuns
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", *workers)
	}
	opt.Workers = *workers
	if *faults < 0 || *faults >= 1 {
		return fmt.Errorf("-faults must be in [0,1), got %v", *faults)
	}
	opt.FaultRate = *faults
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be >= 1, got %d", *parallel)
	}

	var specs []scenario.Scenario
	var sharedEng *scenario.Engine
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return fmt.Errorf("read scenario spec: %w", err)
		}
		specs, err = scenario.ParseSpecs(data)
		if err != nil {
			return err
		}
		if *ckptDir == "" && *cacheDir == "" {
			// One engine shared across the file's specs so repeated
			// analytical-model evaluations hit the memo cache. With
			// checkpoints or a result cache each spec needs its own
			// store, hence its own engine.
			sharedEng = scenario.NewEngine(opt)
		}
	} else {
		figSpecs, ablSpecs := experiment.FigureSpecs(), experiment.AblationSpecs()
		byID := make(map[string]scenario.Scenario, len(figSpecs)+len(ablSpecs))
		var ids, ablIDs []string
		for _, s := range figSpecs {
			byID[s.ID] = s
			ids = append(ids, s.ID)
		}
		for _, s := range ablSpecs {
			byID[s.ID] = s
			ablIDs = append(ablIDs, s.ID)
		}
		var selected []string
		switch *figID {
		case "all":
			selected = ids
		case "ablations":
			selected = ablIDs
		case "everything":
			selected = append(append([]string(nil), ids...), ablIDs...)
		default:
			id := *figID
			if len(id) <= 2 { // allow "-fig 4" and "-fig 11"
				id = fmt.Sprintf("fig%02s", id)
			}
			if _, ok := byID[id]; !ok {
				return fmt.Errorf("unknown figure %q (known: %v + %v)", *figID, ids, ablIDs)
			}
			selected = []string{id}
		}
		for _, id := range selected {
			specs = append(specs, byID[id])
		}
	}

	// One supervisor for the whole invocation: SIGINT/SIGTERM request a
	// drain (in-flight trials finish, checkpoints flush, the run exits
	// nonzero), and a panicking or hung trial is quarantined instead of
	// killing the process.
	sup := runner.NewSupervisor(*trialTimeout)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sigDone := make(chan struct{})
	go func() {
		select {
		case s := <-sigc:
			fmt.Fprintf(os.Stderr, "figures: received %v, draining (completed trials are checkpointed)\n", s)
			obsRun.RecordEvent(obs.RunEvent{Kind: obs.EventInterrupted, Detail: s.String()})
			sup.Stop()
		case <-sigDone:
		}
	}()
	defer func() {
		signal.Stop(sigc)
		close(sigDone)
	}()
	if sharedEng != nil {
		sharedEng.Supervise(sup, nil)
	}

	generate := func(spec *scenario.Scenario) (*experiment.Figure, error) {
		if sharedEng != nil {
			return sharedEng.Run(spec)
		}
		eng := scenario.NewEngine(opt)
		if *cacheDir != "" {
			key, err := scenario.ContentKey(spec, opt)
			if err != nil {
				return nil, err
			}
			store, err := resultcache.Open(*cacheDir, key, spec.ID, opt.Seed, *fleetID)
			if err != nil {
				return nil, err
			}
			defer store.Close()
			if n := store.Loaded(); n > 0 {
				fmt.Fprintf(os.Stderr, "figures: %s: cache entry %.12s holds %d completed trials\n", spec.ID, key, n)
			}
			eng.SuperviseFleet(sup, dispatch.New(store, dispatch.Options{
				Owner: *fleetID, LeaseTTL: *leaseTTL,
			}))
			return eng.Run(spec)
		}
		var store *checkpoint.Store
		if *ckptDir != "" {
			key, err := scenario.RunKey(spec, opt)
			if err != nil {
				return nil, err
			}
			path := filepath.Join(*ckptDir, spec.ID+".ckpt")
			_, statErr := os.Stat(path)
			if *resume && statErr == nil {
				store, err = checkpoint.Resume(path, key)
				if err != nil {
					return nil, err
				}
				if n := store.Loaded(); n > 0 {
					fmt.Fprintf(os.Stderr, "figures: %s: resumed %d completed trials from %s\n", spec.ID, n, path)
					obsRun.RecordEvent(obs.RunEvent{
						Kind:   obs.EventResumed,
						Detail: fmt.Sprintf("%s: %d trials from %s", spec.ID, n, path),
					})
				}
			} else {
				if *resume {
					fmt.Fprintf(os.Stderr, "figures: %s: no checkpoint at %s, starting fresh\n", spec.ID, path)
				}
				store, err = checkpoint.Create(path, key)
				if err != nil {
					return nil, err
				}
			}
			defer store.Close()
			eng.Supervise(sup, store)
		} else {
			eng.Supervise(sup, nil)
		}
		return eng.Run(spec)
	}

	figures := make([]*experiment.Figure, len(specs))
	elapsed := make([]time.Duration, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, *parallel)
	var wg sync.WaitGroup
	for idx := range specs {
		idx := idx
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if sup.Stopping() {
				errs[idx] = fmt.Errorf("%s: %w", specs[idx].ID, runner.ErrInterrupted)
				return
			}
			endPhase := obs.Current().StartPhase(specs[idx].ID)
			start := time.Now()
			fig, err := generate(&specs[idx])
			if err == nil {
				err = fig.Validate()
			}
			endPhase()
			figures[idx], elapsed[idx], errs[idx] = fig, time.Since(start), err
		}()
	}
	wg.Wait()

	// Quarantined trials are manifest events; the run still exits
	// nonzero identifying them.
	for _, te := range sup.Quarantined() {
		obsRun.RecordEvent(obs.RunEvent{
			Kind:   obs.EventTrialQuarantined,
			Detail: firstLine(te.Error()),
			Batch:  te.Batch,
			Trial:  te.Trial,
		})
	}

	// Write every successful figure (atomically — a kill mid-write can
	// never leave a partial CSV), then report the first failure.
	var firstErr error
	for idx := range specs {
		id := specs[idx].ID
		if errs[idx] != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", id, errs[idx])
			}
			continue
		}
		fig := figures[idx]
		if !*noPlot {
			fmt.Fprint(out, fig.Render(*width, *height))
			fmt.Fprintf(out, "          generated in %v\n\n", elapsed[idx].Round(time.Millisecond))
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, id+".csv")
			if err := atomicio.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
				return fmt.Errorf("write %s: %w", path, err)
			}
			fmt.Fprintf(out, "wrote %s\n", path)
			if *jsonOut {
				data, err := fig.JSON()
				if err != nil {
					return err
				}
				jpath := filepath.Join(*outDir, id+".json")
				if err := atomicio.WriteFile(jpath, data, 0o644); err != nil {
					return fmt.Errorf("write %s: %w", jpath, err)
				}
				fmt.Fprintf(out, "wrote %s\n", jpath)
			}
		}
	}
	type manifestConfig struct {
		Figures      []string `json:"figures"`
		Runs         int      `json:"runs"`
		SecurityRuns int      `json:"securityRuns"`
		TraceRuns    int      `json:"traceRuns"`
		Parallel     int      `json:"parallel"`
		Checkpoint   string   `json:"checkpoint,omitempty"`
		Resume       bool     `json:"resume,omitempty"`
		Cache        string   `json:"cache,omitempty"`
		FleetID      string   `json:"fleetId,omitempty"`
	}
	ids := make([]string, len(specs))
	for i := range specs {
		ids[i] = specs[i].ID
	}
	// The manifest is written even on interrupted or quarantined runs —
	// it is the audit record of what happened.
	finishErr := obsRun.Finish(manifestConfig{
		Figures: ids, Runs: opt.Runs, SecurityRuns: opt.SecurityRuns,
		TraceRuns: opt.TraceRuns, Parallel: *parallel,
		Checkpoint: *ckptDir, Resume: *resume,
		Cache: *cacheDir, FleetID: fleetIDForManifest(*cacheDir, *fleetID),
	}, opt.Seed, opt.Workers, opt.FaultRate)
	if firstErr != nil {
		if errors.Is(firstErr, runner.ErrInterrupted) && *ckptDir != "" {
			return fmt.Errorf("%w; rerun with -resume to continue", firstErr)
		}
		return firstErr
	}
	return finishErr
}

// fleetIDForManifest records the worker name only when a cache is in
// use, keeping cacheless manifests byte-stable across hosts and PIDs.
func fleetIDForManifest(cacheDir, fleetID string) string {
	if cacheDir == "" {
		return ""
	}
	return fleetID
}

// firstLine truncates multi-line error text (panic stacks) for the
// manifest's one-line detail field.
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
