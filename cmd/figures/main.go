// Command figures regenerates the paper's evaluation figures
// (Figs. 4-19). For each figure it can print an ASCII plot and write a
// tidy CSV next to it.
//
// Usage:
//
//	figures -fig all -out results/
//	figures -fig fig11 -runs 1000
//	figures -fig fig04 -manifest out.json -cpuprofile cpu.prof
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	var (
		figID        = fs.String("fig", "all", "figure to generate: fig04..fig19, a number like 11, an ablation-* id, 'all', 'ablations', or 'everything'")
		outDir       = fs.String("out", "", "directory for CSV output (omit to skip CSV)")
		runs         = fs.Int("runs", 0, "routed messages per delivery/cost point (0 = default)")
		securityRuns = fs.Int("security-runs", 0, "sampled paths per security point (0 = default)")
		traceRuns    = fs.Int("trace-runs", 0, "routed messages per trace figure (0 = default)")
		seed         = fs.Uint64("seed", 1, "root random seed")
		workers      = fs.Int("workers", 0, "concurrent trial workers per figure (0 = GOMAXPROCS); output is identical for any value")
		faults       = fs.Float64("faults", 0, "fault-injection rate in [0,1) applied to every figure (0 = pristine; ablation-faults sweeps internally)")
		specPath     = fs.String("scenario", "", "JSON scenario spec file (one object or an array); overrides -fig")
		noPlot       = fs.Bool("no-plot", false, "suppress ASCII plots")
		jsonOut      = fs.Bool("json", false, "also write .json files when -out is set")
		parallel     = fs.Int("parallel", 1, "figures generated concurrently")
		width        = fs.Int("width", 72, "plot width")
		height       = fs.Int("height", 18, "plot height")
	)
	rf := obs.AddRunFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Create the output directory before Begin so profile/manifest
	// paths under -out resolve.
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("create output dir: %w", err)
		}
	}
	obsRun, err := rf.Begin("figures", args)
	if err != nil {
		return err
	}
	defer obsRun.Abort()

	opt := experiment.DefaultOptions()
	opt.Seed = *seed
	if *runs > 0 {
		opt.Runs = *runs
	}
	if *securityRuns > 0 {
		opt.SecurityRuns = *securityRuns
	}
	if *traceRuns > 0 {
		opt.TraceRuns = *traceRuns
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", *workers)
	}
	opt.Workers = *workers
	if *faults < 0 || *faults >= 1 {
		return fmt.Errorf("-faults must be in [0,1), got %v", *faults)
	}
	opt.FaultRate = *faults
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be >= 1, got %d", *parallel)
	}

	var reg map[string]experiment.Generator
	var selected []string
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return fmt.Errorf("read scenario spec: %w", err)
		}
		specs, err := scenario.ParseSpecs(data)
		if err != nil {
			return err
		}
		// One engine shared across the file's specs so repeated
		// analytical-model evaluations hit the memo cache.
		eng := scenario.NewEngine(opt)
		reg = make(map[string]experiment.Generator, len(specs))
		for i := range specs {
			spec := specs[i]
			reg[spec.ID] = func(experiment.Options) (*experiment.Figure, error) {
				return eng.Run(&spec)
			}
			selected = append(selected, spec.ID)
		}
	} else {
		var ids []string
		reg, ids = experiment.Registry()
		ablReg, ablIDs := experiment.AblationRegistry()
		for id, gen := range ablReg {
			reg[id] = gen
		}
		switch *figID {
		case "all":
			selected = ids
		case "ablations":
			selected = ablIDs
		case "everything":
			selected = append(append([]string(nil), ids...), ablIDs...)
		default:
			id := *figID
			if len(id) <= 2 { // allow "-fig 4" and "-fig 11"
				id = fmt.Sprintf("fig%02s", id)
			}
			if _, ok := reg[id]; !ok {
				return fmt.Errorf("unknown figure %q (known: %v + %v)", *figID, ids, ablIDs)
			}
			selected = []string{id}
		}
	}
	figures := make([]*experiment.Figure, len(selected))
	elapsed := make([]time.Duration, len(selected))
	errs := make([]error, len(selected))
	sem := make(chan struct{}, *parallel)
	var wg sync.WaitGroup
	for idx, id := range selected {
		idx, id := idx, id
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			endPhase := obs.Current().StartPhase(id)
			start := time.Now()
			fig, err := reg[id](opt)
			if err == nil {
				err = fig.Validate()
			}
			endPhase()
			figures[idx], elapsed[idx], errs[idx] = fig, time.Since(start), err
		}()
	}
	wg.Wait()

	for idx, id := range selected {
		if errs[idx] != nil {
			return fmt.Errorf("%s: %w", id, errs[idx])
		}
		fig := figures[idx]
		if !*noPlot {
			fmt.Fprint(out, fig.Render(*width, *height))
			fmt.Fprintf(out, "          generated in %v\n\n", elapsed[idx].Round(time.Millisecond))
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, id+".csv")
			if err := os.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
				return fmt.Errorf("write %s: %w", path, err)
			}
			fmt.Fprintf(out, "wrote %s\n", path)
			if *jsonOut {
				data, err := fig.JSON()
				if err != nil {
					return err
				}
				jpath := filepath.Join(*outDir, id+".json")
				if err := os.WriteFile(jpath, data, 0o644); err != nil {
					return fmt.Errorf("write %s: %w", jpath, err)
				}
				fmt.Fprintf(out, "wrote %s\n", jpath)
			}
		}
	}
	type manifestConfig struct {
		Figures      []string `json:"figures"`
		Runs         int      `json:"runs"`
		SecurityRuns int      `json:"securityRuns"`
		TraceRuns    int      `json:"traceRuns"`
		Parallel     int      `json:"parallel"`
	}
	return obsRun.Finish(manifestConfig{
		Figures: selected, Runs: opt.Runs, SecurityRuns: opt.SecurityRuns,
		TraceRuns: opt.TraceRuns, Parallel: *parallel,
	}, opt.Seed, opt.Workers, opt.FaultRate)
}
