package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/scenario"
)

// fleetOpt mirrors the Options run() builds from the fleet test's CLI
// flags, so the test can derive the same content key the CLI will.
func fleetOpt(seed uint64, securityRuns int) experiment.Options {
	opt := experiment.DefaultOptions()
	opt.Seed = seed
	opt.SecurityRuns = securityRuns
	return opt
}

// fig06Spec fetches the registry's fig06 spec (security-point: cheap,
// fully synthetic).
func fig06Spec(t *testing.T) scenario.Scenario {
	t.Helper()
	for _, s := range experiment.FigureSpecs() {
		if s.ID == "fig06" {
			return s
		}
	}
	t.Fatal("fig06 missing from the registry")
	return scenario.Scenario{}
}

// readArtifacts returns fig06's CSV and JSON bytes from an output dir.
func readArtifacts(t *testing.T, dir string) ([]byte, []byte) {
	t.Helper()
	csv, err := os.ReadFile(filepath.Join(dir, "fig06.csv"))
	if err != nil {
		t.Fatal(err)
	}
	js, err := os.ReadFile(filepath.Join(dir, "fig06.json"))
	if err != nil {
		t.Fatal(err)
	}
	return csv, js
}

// TestFleetStaleLeaseStolen pins the steal-back path end to end: a
// lease abandoned by a dead worker (forged here with an ancient mtime)
// is stolen by the next run, the chunk recomputes, and the artifacts
// are byte-identical to a cacheless run. The manifest's
// dispatch.steals counter proves the steal actually happened.
func TestFleetStaleLeaseStolen(t *testing.T) {
	const securityRuns = 300
	base := []string{
		"-fig", "fig06", "-no-plot", "-json",
		"-security-runs", fmt.Sprint(securityRuns), "-seed", "1",
	}
	goldenDir := t.TempDir()
	if err := run(append([]string{"-out", goldenDir}, base...), os.Stdout); err != nil {
		t.Fatal(err)
	}
	goldenCSV, goldenJSON := readArtifacts(t, goldenDir)

	// Forge the dead worker's droppings: the cache entry the run will
	// address, holding a stale lease on the first chunk of the first
	// security batch.
	spec := fig06Spec(t)
	opt := fleetOpt(1, securityRuns)
	key, err := scenario.ContentKey(&spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	cacheDir := t.TempDir()
	store, err := resultcache.Open(cacheDir, key, spec.ID, opt.Seed, "dead-worker")
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte("fig06/security/s0/x0"))
	lease := filepath.Join(store.LeaseDir(), fmt.Sprintf("%x-0.lease", sum[:8]))
	if err := os.WriteFile(lease, []byte("dead-worker\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ancient := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(lease, ancient, ancient); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	outDir := t.TempDir()
	manifest := filepath.Join(t.TempDir(), "manifest.json")
	args := append([]string{
		"-out", outDir, "-cache", cacheDir, "-manifest", manifest,
	}, base...)
	if err := run(args, os.Stdout); err != nil {
		t.Fatal(err)
	}

	gotCSV, gotJSON := readArtifacts(t, outDir)
	if !bytes.Equal(gotCSV, goldenCSV) {
		t.Error("post-steal CSV differs from the cacheless golden")
	}
	if !bytes.Equal(gotJSON, goldenJSON) {
		t.Error("post-steal JSON differs from the cacheless golden")
	}
	if _, err := os.Stat(lease); !os.IsNotExist(err) {
		t.Errorf("stale lease still present after the run (stat err = %v)", err)
	}

	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	m, err := obs.ValidateManifestBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	var steals, leases int64 = -1, -1
	for _, c := range m.Counters {
		switch c.Name {
		case "dispatch.steals":
			steals = c.Value
		case "dispatch.leases":
			leases = c.Value
		}
	}
	if steals < 1 {
		t.Errorf("dispatch.steals = %d, want >= 1 (the forged stale lease)", steals)
	}
	if leases < 1 {
		t.Errorf("dispatch.leases = %d, want >= 1", leases)
	}
}

// TestFleetKillResumeByteIdentical is the cache flavor of the
// crash-safety acceptance test: SIGKILL a -cache run mid-flight —
// leaving torn shard tails and orphaned leases — then rerun with the
// same -cache and a short lease TTL. The rerun must steal the
// orphans, finish the remaining trials, and produce artifacts
// byte-identical to an uninterrupted cacheless run. No -resume flag:
// the cache resumes implicitly.
func TestFleetKillResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills subprocesses")
	}
	var midRunKills int64
	for _, seed := range []uint64{1, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			base := []string{
				"-fig", "fig06", "-no-plot", "-json",
				"-runs", "40", "-security-runs", "4000", "-trace-runs", "5",
				"-seed", fmt.Sprint(seed), "-workers", "4",
			}
			goldenDir := t.TempDir()
			if err := run(append([]string{"-out", goldenDir}, base...), os.Stdout); err != nil {
				t.Fatal(err)
			}
			goldenCSV, goldenJSON := readArtifacts(t, goldenDir)

			outDir, cacheDir := t.TempDir(), t.TempDir()
			args := append([]string{
				"-out", outDir, "-cache", cacheDir, "-lease-ttl", "300ms",
			}, base...)
			rnd := rand.New(rand.NewSource(int64(seed)*37 + 5))
			delay := 150*time.Millisecond + time.Duration(rnd.Int63n(int64(600*time.Millisecond)))
			victim, _ := figuresCmd(t, args)
			if err := victim.Start(); err != nil {
				t.Fatal(err)
			}
			time.Sleep(delay)
			_ = victim.Process.Kill() // SIGKILL: no lease release, no shard close
			if err := victim.Wait(); err != nil {
				atomic.AddInt64(&midRunKills, 1)
			} else {
				t.Logf("run finished in under %v; rerun will replay a complete cache", delay)
			}
			if left := tmpDroppings(t, outDir); len(left) != 0 {
				t.Fatalf("SIGKILL left temp artifacts: %v", left)
			}

			rerun, stderr := figuresCmd(t, args)
			if err := rerun.Run(); err != nil {
				t.Fatalf("cache rerun failed: %v\n%s", err, stderr.String())
			}
			gotCSV, gotJSON := readArtifacts(t, outDir)
			if !bytes.Equal(gotCSV, goldenCSV) {
				t.Errorf("cache-resumed CSV differs from uninterrupted golden (%d vs %d bytes)", len(gotCSV), len(goldenCSV))
			}
			if !bytes.Equal(gotJSON, goldenJSON) {
				t.Errorf("cache-resumed JSON differs from uninterrupted golden (%d vs %d bytes)", len(gotJSON), len(goldenJSON))
			}
		})
	}
	t.Cleanup(func() {
		if !t.Failed() && atomic.LoadInt64(&midRunKills) == 0 {
			t.Error("no subprocess was killed mid-run; the kill window no longer overlaps the run — retune the delays")
		}
	})
}

// TestFleetTwoProcessByteIdentical runs two concurrent CLI processes
// against one shared cache directory — the worked fleet example from
// the README — and requires both to emit artifacts byte-identical to
// a single cacheless process. Re-exec gives each process its own pid
// and therefore its own default fleet ID and shard.
func TestFleetTwoProcessByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	base := []string{
		"-fig", "fig06", "-no-plot", "-json",
		"-runs", "40", "-security-runs", "2000", "-trace-runs", "5",
		"-seed", "1", "-workers", "2",
	}
	goldenDir := t.TempDir()
	if err := run(append([]string{"-out", goldenDir}, base...), os.Stdout); err != nil {
		t.Fatal(err)
	}
	goldenCSV, goldenJSON := readArtifacts(t, goldenDir)

	cacheDir := t.TempDir()
	outA, outB := t.TempDir(), t.TempDir()
	procA, errA := figuresCmd(t, append([]string{"-out", outA, "-cache", cacheDir}, base...))
	procB, errB := figuresCmd(t, append([]string{"-out", outB, "-cache", cacheDir}, base...))
	if err := procA.Start(); err != nil {
		t.Fatal(err)
	}
	if err := procB.Start(); err != nil {
		t.Fatal(err)
	}
	if err := procA.Wait(); err != nil {
		t.Fatalf("worker A failed: %v\n%s", err, errA.String())
	}
	if err := procB.Wait(); err != nil {
		t.Fatalf("worker B failed: %v\n%s", err, errB.String())
	}
	for name, dir := range map[string]string{"A": outA, "B": outB} {
		csv, js := readArtifacts(t, dir)
		if !bytes.Equal(csv, goldenCSV) {
			t.Errorf("worker %s CSV differs from the single-process golden", name)
		}
		if !bytes.Equal(js, goldenJSON) {
			t.Errorf("worker %s JSON differs from the single-process golden", name)
		}
	}
}
