package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSingleFigureWithCSV(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-fig", "fig06", "-out", dir, "-no-plot",
		"-runs", "20", "-security-runs", "50", "-trace-runs", "5",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig06.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,x,y,ci\n") {
		t.Fatalf("csv header wrong: %q", string(data)[:40])
	}
	if !strings.Contains(string(data), "Analysis: 3 onions") {
		t.Fatal("csv missing analysis series")
	}
}

func TestNumericFigureAlias(t *testing.T) {
	err := run([]string{
		"-fig", "8", "-no-plot",
		"-runs", "10", "-security-runs", "30", "-trace-runs", "5",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	// Two-digit alias.
	err = run([]string{
		"-fig", "13", "-no-plot",
		"-runs", "10", "-security-runs", "30", "-trace-runs", "5",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "fig99"}, os.Stdout); err == nil {
		t.Fatal("accepted unknown figure")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}, os.Stdout); err == nil {
		t.Fatal("accepted unknown flag")
	}
}

// TestParallelMustBePositive pins the fix for the silent clamp:
// `-parallel 0` used to run serially with no diagnostic; it must now
// be rejected like every other out-of-range flag.
func TestParallelMustBePositive(t *testing.T) {
	for _, p := range []string{"0", "-3"} {
		err := run([]string{"-fig", "fig04", "-no-plot", "-parallel", p}, os.Stdout)
		if err == nil {
			t.Errorf("-parallel %s accepted (used to be silently clamped to 1)", p)
			continue
		}
		if !strings.Contains(err.Error(), "-parallel") {
			t.Errorf("-parallel %s: error %q does not name the flag", p, err)
		}
	}
}

func TestScenarioSpecFile(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(spec, []byte(`{
		"id": "from-file",
		"title": "spec-file smoke",
		"xLabel": "deadline", "yLabel": "delivery",
		"series": {"param": "GroupSize", "values": [1, 5], "labelFormat": "g=%d"},
		"x": {"param": "deadline", "values": [60, 600, 1800]},
		"measure": {"kind": "delivery-curve"}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{
		"-scenario", spec, "-out", dir, "-no-plot",
		"-runs", "20", "-security-runs", "50", "-trace-runs", "5",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "from-file.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Simulation: g=5") {
		t.Fatalf("spec-file csv missing expected series:\n%s", data)
	}
}

func TestScenarioSpecFileMalformed(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(spec, []byte(`{"id": "x", "measure": {"kind": "nope"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", spec, "-no-plot"}, os.Stdout); err == nil {
		t.Fatal("malformed spec file accepted")
	}
	if err := run([]string{"-scenario", filepath.Join(dir, "missing.json"), "-no-plot"}, os.Stdout); err == nil {
		t.Fatal("missing spec file accepted")
	}
}

func TestParallelWithJSON(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-fig", "ablations", "-out", dir, "-no-plot", "-json", "-parallel", "4",
		"-runs", "20", "-security-runs", "50", "-trace-runs", "5",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "ablation-traceable.json"))
	if err != nil {
		t.Fatal(err)
	}
	var fig struct {
		ID     string `json:"id"`
		Series []struct {
			Name string    `json:"name"`
			X    []float64 `json:"x"`
			Y    []float64 `json:"y"`
		} `json:"series"`
	}
	if err := json.Unmarshal(data, &fig); err != nil {
		t.Fatal(err)
	}
	if fig.ID != "ablation-traceable" || len(fig.Series) != 3 {
		t.Fatalf("json content: %+v", fig)
	}
}
