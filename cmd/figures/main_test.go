package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSingleFigureWithCSV(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-fig", "fig06", "-out", dir, "-no-plot",
		"-runs", "20", "-security-runs", "50", "-trace-runs", "5",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig06.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,x,y,ci\n") {
		t.Fatalf("csv header wrong: %q", string(data)[:40])
	}
	if !strings.Contains(string(data), "Analysis: 3 onions") {
		t.Fatal("csv missing analysis series")
	}
}

func TestNumericFigureAlias(t *testing.T) {
	err := run([]string{
		"-fig", "8", "-no-plot",
		"-runs", "10", "-security-runs", "30", "-trace-runs", "5",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	// Two-digit alias.
	err = run([]string{
		"-fig", "13", "-no-plot",
		"-runs", "10", "-security-runs", "30", "-trace-runs", "5",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "fig99"}, os.Stdout); err == nil {
		t.Fatal("accepted unknown figure")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}, os.Stdout); err == nil {
		t.Fatal("accepted unknown flag")
	}
}

func TestParallelWithJSON(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-fig", "ablations", "-out", dir, "-no-plot", "-json", "-parallel", "4",
		"-runs", "20", "-security-runs", "50", "-trace-runs", "5",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "ablation-traceable.json"))
	if err != nil {
		t.Fatal(err)
	}
	var fig struct {
		ID     string `json:"id"`
		Series []struct {
			Name string    `json:"name"`
			X    []float64 `json:"x"`
			Y    []float64 `json:"y"`
		} `json:"series"`
	}
	if err := json.Unmarshal(data, &fig); err != nil {
		t.Fatal(err)
	}
	if fig.ID != "ablation-traceable" || len(fig.Series) != 3 {
		t.Fatalf("json content: %+v", fig)
	}
}
