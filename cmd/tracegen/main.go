// Command tracegen generates the synthetic haggle-like contact traces
// used by the trace experiments (Sec. V-D/E substitutes; see
// DESIGN.md) and prints trace statistics.
//
// Usage:
//
//	tracegen -preset cambridge -o cambridge.trace
//	tracegen -preset infocom -stats
//	tracegen -nodes 25 -days 3 -mean-ict 200 -o custom.trace
//	tracegen -city -nodes 10000 -o city.trace -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/atomicio"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		preset   = fs.String("preset", "", "cambridge | infocom (overrides the custom flags)")
		outPath  = fs.String("o", "", "output file (default: stdout)")
		seed     = fs.Uint64("seed", 1, "random seed")
		statsFlg = fs.Bool("stats", false, "print trace statistics to stderr")

		nodes    = fs.Int("nodes", 20, "population size")
		days     = fs.Int("days", 3, "days covered")
		dayStart = fs.Float64("day-start", 9, "activity window start hour")
		dayEnd   = fs.Float64("day-end", 17, "activity window end hour")
		session  = fs.Float64("session-min", 480, "session length, minutes")
		brk      = fs.Float64("break-min", 0, "break between sessions, minutes")
		meanICT  = fs.Float64("mean-ict", 300, "per-pair mean inter-contact time during sessions, seconds")
		dur      = fs.Float64("contact-sec", 60, "mean contact duration, seconds")
		pairProb = fs.Float64("pair-prob", 1, "probability a pair ever meets")

		city      = fs.Bool("city", false, "generate a city-scale PPP mobility trace (uses -nodes, -seed, -contact-sec)")
		cityWidth = fs.Float64("city-width", 0, "torus side, meters (default: sized for constant density)")
		cityRange = fs.Float64("city-range", 100, "radio range, meters")
		cityICT   = fs.Float64("city-ict", 3600, "mean inter-contact time at zero distance, seconds")
		horizon   = fs.Float64("horizon", 86400, "city trace span, seconds")
		workers   = fs.Int("workers", 0, "city generation workers (0 = GOMAXPROCS; output is identical for any value)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *city {
		if *preset != "" {
			return fmt.Errorf("-city and -preset are mutually exclusive")
		}
		spec := workload.DefaultCitySpec(*nodes)
		spec.Seed = *seed
		spec.Range = *cityRange
		spec.MeanICT = *cityICT
		spec.ContactSec = *dur
		spec.Horizon = *horizon
		spec.Workers = *workers
		if *cityWidth > 0 {
			spec.Width = *cityWidth
		}
		tr, err := workload.CityScale(spec)
		if err != nil {
			return err
		}
		return emit(tr, *outPath, *statsFlg, out)
	}

	var cfg trace.DiurnalConfig
	switch *preset {
	case "cambridge":
		cfg = trace.CambridgeConfig()
	case "infocom":
		cfg = trace.InfocomConfig()
	case "":
		cfg = trace.DiurnalConfig{
			Nodes: *nodes, Days: *days,
			DayStartHour: *dayStart, DayEndHour: *dayEnd,
			SessionMinutes: *session, BreakMinutes: *brk,
			MeanICT: *meanICT, ContactSeconds: *dur, PairProb: *pairProb,
		}
	default:
		return fmt.Errorf("unknown preset %q (want cambridge or infocom)", *preset)
	}

	tr, err := trace.Generate(cfg, rng.New(*seed))
	if err != nil {
		return err
	}
	return emit(tr, *outPath, *statsFlg, out)
}

func emit(tr *trace.Trace, outPath string, stats bool, out io.Writer) error {
	if stats {
		st := tr.Summarize()
		fmt.Fprintf(os.Stderr,
			"nodes=%d contacts=%d duration=%.0fs active-pairs=%d density=%.2f contacts/pair=%.1f\n",
			st.Nodes, st.Contacts, st.Duration, st.ActivePairs, st.PairDensity, st.ContactsPerPair)
	}
	if outPath != "" {
		// Atomic: a killed tracegen never leaves a truncated trace that
		// a later experiment would silently replay.
		return atomicio.WriteTo(outPath, 0o644, func(w io.Writer) error {
			_, err := tr.WriteTo(w)
			return err
		})
	}
	if _, err := tr.WriteTo(out); err != nil {
		return err
	}
	return nil
}
