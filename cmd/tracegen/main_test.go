package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestPresetToFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cam.trace")
	if err := run([]string{"-preset", "cambridge", "-o", path, "-seed", "3"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ParseReader(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NodeCount != 12 {
		t.Fatalf("nodes = %d, want 12", tr.NodeCount)
	}
}

func TestCustomConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "custom.trace")
	err := run([]string{
		"-nodes", "8", "-days", "1", "-mean-ict", "120", "-o", path,
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ParseReader(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NodeCount != 8 {
		t.Fatalf("nodes = %d", tr.NodeCount)
	}
	if tr.Duration() > 24*3600 {
		t.Fatalf("duration %v exceeds one day", tr.Duration())
	}
}

func TestUnknownPreset(t *testing.T) {
	if err := run([]string{"-preset", "mars"}, os.Stdout); err == nil {
		t.Fatal("accepted unknown preset")
	}
}

func TestInvalidCustomConfig(t *testing.T) {
	if err := run([]string{"-nodes", "1"}, os.Stdout); err == nil {
		t.Fatal("accepted single-node trace")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	for _, p := range []string{a, b} {
		if err := run([]string{"-preset", "infocom", "-seed", "11", "-o", p}, os.Stdout); err != nil {
			t.Fatal(err)
		}
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.EqualFold(string(da), string(db)) {
		t.Fatal("same seed produced different trace files")
	}
}

func TestCityMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "city.trace")
	err := run([]string{
		"-city", "-nodes", "300", "-seed", "5", "-horizon", "7200", "-o", path,
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ParseReader(f)
	if err != nil {
		t.Fatal(err)
	}
	// ParseReader compacts IDs to the nodes that actually appear, so the
	// count can only be <= the population.
	if tr.NodeCount > 300 || tr.NodeCount < 100 {
		t.Fatalf("city trace covers %d nodes, want most of 300", tr.NodeCount)
	}
	if len(tr.Contacts) == 0 {
		t.Fatal("city trace has no contacts")
	}
	if tr.Duration() > 7200 {
		t.Fatalf("duration %v exceeds horizon", tr.Duration())
	}
}

func TestCityModeWorkerInvariant(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "w1"), filepath.Join(dir, "w4")
	for p, w := range map[string]string{a: "1", b: "4"} {
		err := run([]string{
			"-city", "-nodes", "200", "-seed", "9", "-horizon", "3600",
			"-workers", w, "-o", p,
		}, os.Stdout)
		if err != nil {
			t.Fatal(err)
		}
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Fatal("city trace differs across worker counts")
	}
}

func TestCityModeRejectsPreset(t *testing.T) {
	if err := run([]string{"-city", "-preset", "infocom"}, os.Stdout); err == nil {
		t.Fatal("accepted -city together with -preset")
	}
}

func TestCityModeRejectsBadSpec(t *testing.T) {
	if err := run([]string{"-city", "-nodes", "1"}, os.Stdout); err == nil {
		t.Fatal("accepted single-node city")
	}
	if err := run([]string{"-city", "-nodes", "100", "-horizon", "0"}, os.Stdout); err == nil {
		t.Fatal("accepted zero horizon")
	}
}
