package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func writeManifest(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.json")
	rf := &obs.RunFlags{ManifestPath: path, Profiles: &obs.Profiles{}}
	run, err := rf.Begin("obscheck-test", nil)
	if err != nil {
		t.Fatal(err)
	}
	obs.Current().Add(obs.RoutingContacts, 3)
	if err := run.Finish(map[string]int{"n": 1}, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestObscheckAcceptsValidManifest(t *testing.T) {
	path := writeManifest(t)
	if err := run([]string{"-counters", path}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestObscheckRejectsCorruptManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"version": 999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{path}, os.Stdout); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
	if err := run(nil, os.Stdout); err == nil {
		t.Fatal("missing argument accepted")
	}
}
