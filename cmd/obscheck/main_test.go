package main

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/resultcache"
)

func writeManifest(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.json")
	rf := &obs.RunFlags{ManifestPath: path, Profiles: &obs.Profiles{}}
	run, err := rf.Begin("obscheck-test", nil)
	if err != nil {
		t.Fatal(err)
	}
	obs.Current().Add(obs.RoutingContacts, 3)
	if err := run.Finish(map[string]int{"n": 1}, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestObscheckAcceptsValidManifest(t *testing.T) {
	path := writeManifest(t)
	if err := run([]string{"-counters", path}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

// writeChaosManifest builds a manifest as a chaos or chaos-free run
// would, with the given totals in the turbulence/self-healing families.
func writeChaosManifest(t *testing.T, args []string, injected, blackouts, retries, opens int64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "chaos.json")
	col := obs.NewCollector()
	col.Add(obs.ChaosInjected, injected)
	col.Add(obs.ChaosBlackouts, blackouts)
	col.Add(obs.RetryAttempts, retries)
	col.Add(obs.BreakerOpens, opens)
	m := obs.BuildManifest(col, "dtnload", args, time.Now())
	m.Seed, m.Workers = 1, 1
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestObscheckChaosFamilies: the chaos/retry counter families must be
// consistent with the recorded invocation — nonzero under -chaos, zero
// without it.
func TestObscheckChaosFamilies(t *testing.T) {
	chaosArgs := []string{"-mode", "cluster", "-chaos", "-chaos-seed", "42"}
	cleanArgs := []string{"-mode", "cluster"}

	// A real chaos run and a real clean run both validate.
	if err := run([]string{writeChaosManifest(t, chaosArgs, 10, 1, 5, 2)}, os.Stdout); err != nil {
		t.Fatalf("consistent chaos manifest rejected: %v", err)
	}
	if err := run([]string{writeChaosManifest(t, cleanArgs, 0, 0, 0, 0)}, os.Stdout); err != nil {
		t.Fatalf("consistent chaos-free manifest rejected: %v", err)
	}

	// A chaos run in which any family stayed silent did not exercise
	// the layer it claims to have run under.
	for _, m := range []string{
		writeChaosManifest(t, chaosArgs, 0, 1, 5, 2),
		writeChaosManifest(t, chaosArgs, 10, 0, 5, 2),
		writeChaosManifest(t, chaosArgs, 10, 1, 0, 2),
		writeChaosManifest(t, chaosArgs, 10, 1, 5, 0),
	} {
		if err := run([]string{m}, os.Stdout); err == nil || !strings.Contains(err.Error(), "want nonzero") {
			t.Errorf("silent chaos family accepted: %v", err)
		}
	}
	// Turbulence leaking into a chaos-free run is equally a lie.
	if err := run([]string{writeChaosManifest(t, cleanArgs, 3, 0, 0, 0)}, os.Stdout); err == nil || !strings.Contains(err.Error(), "want 0") {
		t.Errorf("chaos-free manifest with injected faults accepted: %v", err)
	}
}

func TestObscheckRejectsCorruptManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"version": 999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{path}, os.Stdout); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
	if err := run(nil, os.Stdout); err == nil {
		t.Fatal("missing argument accepted")
	}
}

// synthCache builds a cache directory with one registry-referenced
// entry, one sweep entry, and one orphan.
func synthCache(t *testing.T) (dir string, orphanKey string) {
	t.Helper()
	dir = t.TempDir()
	mk := func(salt, spec string, trials int) string {
		sum := sha256.Sum256([]byte(salt))
		key := hex.EncodeToString(sum[:])
		s, err := resultcache.Open(dir, key, spec, 1, "w")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < trials; i++ {
			if err := s.Save("b", i, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		return key
	}
	mk("a", experiment.FigureSpecs()[0].ID, 3)
	mk("b", "sweep-g", 2)
	orphanKey = mk("c", "renamed-away-spec", 4)
	return dir, orphanKey
}

func TestObscheckCacheList(t *testing.T) {
	dir, _ := synthCache(t)
	outPath := filepath.Join(t.TempDir(), "out.txt")
	f, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-cache", dir}, f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{experiment.FigureSpecs()[0].ID, "sweep-g", "renamed-away-spec", "3 entries"} {
		if !strings.Contains(text, want) {
			t.Fatalf("listing missing %q:\n%s", want, text)
		}
	}
}

func TestObscheckCacheGC(t *testing.T) {
	dir, orphanKey := synthCache(t)
	outPath := filepath.Join(t.TempDir(), "out.txt")
	f, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-cache", dir, "-gc"}, f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "1 entries pruned") {
		t.Fatalf("GC output:\n%s", data)
	}
	if _, err := os.Stat(filepath.Join(dir, orphanKey)); !os.IsNotExist(err) {
		t.Fatal("orphan entry survived GC")
	}
	infos, err := resultcache.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("after GC, %d entries; want 2", len(infos))
	}
}

func TestObscheckCacheFlagValidation(t *testing.T) {
	if err := run([]string{"-gc"}, os.Stdout); err == nil {
		t.Fatal("-gc without -cache accepted")
	}
	file := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-cache", file}, os.Stdout); err == nil {
		t.Fatal("-cache pointing at a regular file accepted")
	}
	if err := run([]string{"-cache", filepath.Join(t.TempDir(), "absent")}, os.Stdout); err == nil {
		t.Fatal("-cache pointing at a missing directory accepted")
	}
}
