// Command obscheck validates a run manifest emitted by -manifest
// against the obs schema: version match, counter-set completeness in
// declaration order, non-negative totals, well-formed phases. CI runs
// it on every instrumented-figure artifact; it is equally handy for
// checking manifests before archiving them next to EXPERIMENTS.md
// numbers.
//
// It also inspects content-addressed result caches (the -cache
// directories of figures/sweep/dtnsim): listing every entry, and
// pruning entries no longer referenced by the current experiment
// registry.
//
// Usage:
//
//	obscheck run-manifest.json [more.json ...]
//	obscheck -cache results/.cache            # list entries
//	obscheck -cache results/.cache -gc        # prune unregistered entries
//
// Exits non-zero on the first invalid manifest. With -counters, the
// validated counter totals are printed (declaration order) for quick
// inspection.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/resultcache"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("obscheck", flag.ContinueOnError)
	counters := fs.Bool("counters", false, "print the validated counter totals")
	cacheDir := fs.String("cache", "", "list the entries of a content-addressed result cache directory")
	gc := fs.Bool("gc", false, "with -cache: prune entries whose spec is not in the current experiment registry")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *gc && *cacheDir == "" {
		return fmt.Errorf("-gc requires -cache DIR")
	}
	if *cacheDir != "" {
		return runCache(out, *cacheDir, *gc)
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: obscheck [-counters] <manifest.json> ... | obscheck -cache DIR [-gc]")
	}
	for _, path := range fs.Args() {
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		m, err := obs.ValidateManifestBytes(raw)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := checkChaosFamilies(m); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(out, "%s: valid (version %d, command %q, revision %s, %d phases, %.2fs wall)\n",
			path, m.Version, m.Command, m.GitRevision, len(m.Phases), m.WallSeconds)
		if *counters {
			for _, c := range m.Counters {
				fmt.Fprintf(out, "  %-36s %d\n", c.Name, c.Value)
			}
		}
	}
	return nil
}

// chaosFamilies are the counters whose totals are coupled to the
// -chaos flag of the run that wrote the manifest.
var chaosFamilies = []string{"chaos.injected", "chaos.blackouts", "retry.attempts", "breaker.opens"}

// checkChaosFamilies cross-checks the turbulence and self-healing
// counter families against the recorded invocation. A run invoked with
// -chaos that never injected a fault, executed a blackout, retried, or
// tripped a breaker did not actually exercise the chaos layer; a
// chaos-free run with nonzero totals in any of these families has
// turbulence leaking into a clean experiment. Either way the manifest
// is lying about the run and fails validation.
func checkChaosFamilies(m *obs.Manifest) error {
	chaotic := false
	for _, a := range m.Args {
		switch strings.TrimLeft(a, "-") {
		case "chaos", "chaos=true":
			chaotic = true
		}
	}
	for _, name := range chaosFamilies {
		v, ok := m.Counter(name)
		if !ok {
			// Counter-set completeness is ValidateManifestBytes's job;
			// older manifests without the family are out of scope here.
			continue
		}
		if chaotic && v == 0 {
			return fmt.Errorf("chaos run recorded %s = 0, want nonzero", name)
		}
		if !chaotic && v != 0 {
			return fmt.Errorf("chaos-free run recorded %s = %d, want 0", name, v)
		}
	}
	return nil
}

// runCache lists a result cache and optionally prunes entries whose
// spec ID is not referenced by the current registry.
func runCache(out *os.File, dir string, gc bool) error {
	st, err := os.Stat(dir)
	if err != nil {
		return fmt.Errorf("-cache: %w", err)
	}
	if !st.IsDir() {
		return fmt.Errorf("-cache: %s is not a directory", dir)
	}
	infos, err := resultcache.List(dir)
	if err != nil {
		return err
	}
	now := time.Now()
	for _, info := range infos {
		fmt.Fprintf(out, "%-24s %.12s  seed %-6d %5d trials  %d shard(s)  age %s\n",
			info.SpecID, info.Key, info.Seed, info.Trials, info.Shards,
			age(now, info.Created))
	}
	fmt.Fprintf(out, "%d entries\n", len(infos))
	if !gc {
		return nil
	}
	pruned, err := resultcache.GC(dir, registryKeeps())
	if err != nil {
		return err
	}
	for _, info := range pruned {
		fmt.Fprintf(out, "pruned %-24s %.12s (%d trials)\n", info.SpecID, info.Key, info.Trials)
	}
	fmt.Fprintf(out, "%d entries pruned\n", len(pruned))
	return nil
}

// registryKeeps returns the GC keep-predicate: every spec in the
// current figure + ablation registry survives, as do the ad-hoc CLI
// families (sweep-* from cmd/sweep, dtnsim-* from cmd/dtnsim), whose
// parameters are bound into the content key rather than the registry.
func registryKeeps() func(specID string) bool {
	known := make(map[string]bool)
	for _, s := range experiment.FigureSpecs() {
		known[s.ID] = true
	}
	for _, s := range experiment.AblationSpecs() {
		known[s.ID] = true
	}
	return func(specID string) bool {
		return known[specID] ||
			strings.HasPrefix(specID, "sweep-") ||
			strings.HasPrefix(specID, "dtnsim-")
	}
}

// age renders a coarse human age (cache entries live for days, not
// milliseconds).
func age(now, created time.Time) string {
	d := now.Sub(created)
	switch {
	case d < time.Minute:
		return fmt.Sprintf("%ds", int(d.Seconds()))
	case d < time.Hour:
		return fmt.Sprintf("%dm", int(d.Minutes()))
	case d < 24*time.Hour:
		return fmt.Sprintf("%dh", int(d.Hours()))
	default:
		return fmt.Sprintf("%dd", int(d.Hours()/24))
	}
}
