// Command obscheck validates a run manifest emitted by -manifest
// against the obs schema: version match, counter-set completeness in
// declaration order, non-negative totals, well-formed phases. CI runs
// it on every instrumented-figure artifact; it is equally handy for
// checking manifests before archiving them next to EXPERIMENTS.md
// numbers.
//
// Usage:
//
//	obscheck run-manifest.json [more.json ...]
//
// Exits non-zero on the first invalid manifest. With -counters, the
// validated counter totals are printed (declaration order) for quick
// inspection.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("obscheck", flag.ContinueOnError)
	counters := fs.Bool("counters", false, "print the validated counter totals")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: obscheck [-counters] <manifest.json> ...")
	}
	for _, path := range fs.Args() {
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		m, err := obs.ValidateManifestBytes(raw)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(out, "%s: valid (version %d, command %q, revision %s, %d phases, %.2fs wall)\n",
			path, m.Version, m.Command, m.GitRevision, len(m.Phases), m.WallSeconds)
		if *counters {
			for _, c := range m.Counters {
				fmt.Fprintf(out, "  %-36s %d\n", c.Name, c.Value)
			}
		}
	}
	return nil
}
