// Command dtndir runs the cluster's bulletin-board/directory service:
// it owns the onion-group partition and the symmetric layer keys,
// admits dtnnode daemons, and hands each joiner the membership table
// plus every key as Shamir threshold shares.
//
// With -coordinate it additionally acts as the replay coordinator:
// once all -n daemons have registered it injects a deterministic
// workload, replays a contact trace as live contacts between the
// daemons, prints a delivery summary, and shuts the fleet down.
//
// Usage:
//
//	dtndir -listen 127.0.0.1:7700 -n 5 -g 2 -seed 11
//	dtndir -n 5 -g 2 -seed 11 -coordinate -trace infocom -horizon 14400 -msgs 20
//	dtndir -n 8 -g 3 -coordinate -trace contacts.txt -from 0 -horizon 3600
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/internal/cluster"
	"repro/internal/contact"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "dtndir:", err)
		os.Exit(1)
	}
}

// metricsReady, when set by a test, receives the metrics scrape URL
// once the endpoint is serving.
var metricsReady func(url string)

// serveMetricsFlag installs a fresh observability collector and serves
// it as a Prometheus scrape target when addr is non-empty. It returns
// a shutdown func (never nil).
func serveMetricsFlag(addr string, out io.Writer) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	col := obs.NewCollector()
	obs.Install(col)
	ms, err := obs.ServeMetrics(addr, col)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "dtndir: serving metrics at %s\n", ms.URL())
	if metricsReady != nil {
		metricsReady(ms.URL())
	}
	return func() { _ = ms.Close() }, nil
}

// run is the testable entry point. ready, when non-nil, is called with
// the listening address once the service is reachable.
func run(args []string, out io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("dtndir", flag.ContinueOnError)
	var (
		listen     = fs.String("listen", "127.0.0.1:0", "listen address")
		n          = fs.Int("n", 5, "number of nodes the cluster will have")
		g          = fs.Int("g", 2, "onion group size")
		seed       = fs.Uint64("seed", 1, "root seed: partition, workload, and path draws")
		shares     = fs.Int("shares", 5, "shamir shares per distributed key")
		threshold  = fs.Int("threshold", 3, "shamir threshold per distributed key")
		coordinate = fs.Bool("coordinate", false, "after all nodes join, drive a workload replay and exit")
		traceArg   = fs.String("trace", "infocom", `contact trace: "infocom", "cambridge", or a trace file path`)
		from       = fs.Float64("from", 0, "replay window start, seconds")
		horizon    = fs.Float64("horizon", 14400, "replay window length, seconds")
		msgs       = fs.Int("msgs", 20, "workload messages to inject")
		relays     = fs.Int("relays", 1, "onion relay groups per message (K)")
		copies     = fs.Int("copies", 2, "spray copies per message (L)")
		joinWait   = fs.Duration("join-wait", 60*time.Second, "how long to wait for all nodes to register")
		metrics    = fs.String("metrics", "", "serve live Prometheus /metrics on this address (enables the observability collector)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	closeMetrics, err := serveMetricsFlag(*metrics, out)
	if err != nil {
		return err
	}
	defer closeMetrics()
	dir, err := cluster.NewDir(cluster.DirConfig{
		Nodes:     *n,
		GroupSize: *g,
		Seed:      *seed,
		Shares:    *shares,
		Threshold: *threshold,
	})
	if err != nil {
		return err
	}
	if err := dir.Start(*listen); err != nil {
		return err
	}
	defer dir.Close()
	fmt.Fprintf(out, "dtndir: serving %d-node directory (g=%d, seed=%d, %d-of-%d key shares) on %s\n",
		*n, *g, *seed, *threshold, *shares, dir.Addr())
	if ready != nil {
		ready(dir.Addr())
	}

	if !*coordinate {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		return nil
	}

	tr, err := loadTrace(*traceArg, *n, *seed)
	if err != nil {
		return err
	}
	if err := waitMembers(dir, *n, *joinWait); err != nil {
		return err
	}
	fmt.Fprintf(out, "dtndir: all %d nodes registered\n", *n)
	return coordinateReplay(out, dir, tr, *seed, *n, *msgs, *relays, *copies, *from, *horizon)
}

// loadTrace resolves the -trace argument: a named synthetic trace
// (derived from the root seed's "trace" substream, so runs reproduce)
// or a trace file in the internal/trace text format.
func loadTrace(arg string, n int, seed uint64) (*trace.Trace, error) {
	switch arg {
	case "infocom", "cambridge":
		gen := trace.GenerateInfocom
		if arg == "cambridge" {
			gen = trace.GenerateCambridge
		}
		tr, err := gen(rng.New(seed).Split("trace"))
		if err != nil {
			return nil, err
		}
		// The synthetic campus traces have a fixed population; keep the
		// n busiest nodes and compact IDs to [0, n).
		return tr.KeepBusiest(n)
	default:
		f, err := os.Open(arg)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := trace.ParseReader(f)
		if err != nil {
			return nil, fmt.Errorf("parse trace %s: %w", arg, err)
		}
		if tr.NodeCount != n {
			return nil, fmt.Errorf("trace %s has %d nodes, cluster has %d", arg, tr.NodeCount, n)
		}
		return tr, nil
	}
}

// waitMembers polls until want nodes are registered.
func waitMembers(dir *cluster.Dir, want int, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for dir.Members() < want {
		if time.Now().After(deadline) {
			return fmt.Errorf("only %d of %d nodes registered after %s", dir.Members(), want, wait)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil
}

// coordinateReplay injects the workload, replays the trace window as
// live contacts (serially — the concurrent scheduler is the in-process
// harness's job), prints the summary, and shuts the daemons down.
func coordinateReplay(out io.Writer, dir *cluster.Dir, tr *trace.Trace, seed uint64, n, msgs, relays, copies int, from, horizon float64) error {
	co := cluster.NewCoordinator(0)
	defer co.Close()
	addrOf := func(v contact.NodeID) (string, error) {
		addr, ok := dir.MemberAddr(v)
		if !ok {
			return "", fmt.Errorf("node %d not registered", v)
		}
		return addr, nil
	}

	workload := cluster.SyntheticWorkload(seed, n, msgs, relays, copies)
	for _, m := range workload {
		addr, err := addrOf(m.Src)
		if err != nil {
			return err
		}
		if err := co.Inject(addr, seed, m); err != nil {
			return fmt.Errorf("inject message %d at node %d: %w", m.Index, m.Src, err)
		}
	}
	fmt.Fprintf(out, "dtndir: injected %d messages\n", len(workload))

	contacts := 0
	end := from + horizon
	for _, c := range tr.Contacts {
		if c.Start < from || c.Start > end {
			continue
		}
		aAddr, err := addrOf(c.A)
		if err != nil {
			return err
		}
		bAddr, err := addrOf(c.B)
		if err != nil {
			return err
		}
		if err := co.Contact(aAddr, c.B, bAddr, c.Start); err != nil {
			return fmt.Errorf("contact %d-%d at t=%.1f: %w", c.A, c.B, c.Start, err)
		}
		contacts++
	}
	fmt.Fprintf(out, "dtndir: replayed %d contacts over [%.0fs, %.0fs]\n", contacts, from, end)

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "node\tsent\tforwarded\tcarried\tdelivered\tbuffered")
	var total cluster.StatsSubset
	delivered := 0
	for v := 0; v < n; v++ {
		addr, err := addrOf(contact.NodeID(v))
		if err != nil {
			return err
		}
		rs, err := co.Stats(addr)
		if err != nil {
			return fmt.Errorf("stats from node %d: %w", v, err)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\n", v,
			rs.Stats.Sent, rs.Stats.Forwarded, rs.Stats.Carried, rs.Stats.Delivered, rs.BufferLen)
		total.Sent += rs.Stats.Sent
		total.Forwarded += rs.Stats.Forwarded
		total.Carried += rs.Stats.Carried
		total.Delivered += rs.Stats.Delivered
		delivered += len(rs.Deliveries)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(out, "dtndir: delivered %d/%d messages (sent=%d forwarded=%d carried=%d)\n",
		delivered, len(workload), total.Sent, total.Forwarded, total.Carried)

	for v := 0; v < n; v++ {
		addr, err := addrOf(contact.NodeID(v))
		if err != nil {
			continue
		}
		if err := co.Quit(addr); err != nil {
			fmt.Fprintf(out, "dtndir: quit node %d: %v\n", v, err)
		}
	}
	return nil
}
