package main

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// TestCoordinatedReplay is the README's worked example as a test: the
// dtndir main in coordinate mode plus a fleet of daemons, all
// in-process, exchanging custody over real loopback TCP. The
// coordinator injects the workload, replays a shrunk conference trace,
// prints the summary, and shuts the fleet down cleanly.
func TestCoordinatedReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a TCP fleet")
	}
	const n = 5
	dirArgs := []string{
		"-n", "5", "-g", "2", "-seed", "11",
		"-coordinate", "-trace", "infocom",
		// The diurnal traces start at hour 9; replay the first hour of
		// conference mingling.
		"-from", "32400", "-horizon", "3600",
		"-msgs", "8", "-relays", "1", "-copies", "2",
		"-join-wait", "30s",
	}
	addrCh := make(chan string, 1)
	dirErr := make(chan error, 1)
	var dirOut bytes.Buffer
	go func() {
		dirErr <- run(dirArgs, &dirOut, func(addr string) { addrCh <- addr })
	}()
	var dirAddr string
	select {
	case dirAddr = <-addrCh:
	case err := <-dirErr:
		t.Fatalf("dtndir exited before serving: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("dtndir did not start serving")
	}

	daemons := make([]*cluster.Daemon, n)
	for id := 0; id < n; id++ {
		d, err := cluster.StartDaemon(cluster.DaemonConfig{ID: id, DirAddr: dirAddr})
		if err != nil {
			t.Fatalf("daemon %d: %v", id, err)
		}
		daemons[id] = d
		defer d.Kill()
	}

	select {
	case err := <-dirErr:
		if err != nil {
			t.Fatalf("dtndir: %v\noutput:\n%s", err, dirOut.String())
		}
	case <-time.After(90 * time.Second):
		t.Fatal("coordinated replay did not finish")
	}
	// The coordinator's quit requests must have shut every daemon down.
	for id, d := range daemons {
		done := make(chan struct{})
		go func() { d.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon %d did not exit after quit", id)
		}
	}

	out := dirOut.String()
	for _, want := range []string{"all 5 nodes registered", "injected 8 messages", "replayed", "delivered"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "replayed 0 contacts") {
		t.Fatalf("replay window held no contacts:\n%s", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "1"}, &out, nil); err == nil {
		t.Fatal("accepted a 1-node cluster")
	}
	if err := run([]string{"-n", "5", "-g", "9"}, &out, nil); err == nil {
		t.Fatal("accepted group size beyond population")
	}
	if err := run([]string{"-n", "5", "-g", "2", "-coordinate", "-trace", "/does/not/exist", "-join-wait", "1ms"}, &out, nil); err == nil {
		t.Fatal("accepted a missing trace file")
	}
}

// TestDirMetricsEndpoint: dtndir -metrics exposes directory activity
// (daemon registrations) as Prometheus series while coordinating.
func TestDirMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a TCP fleet")
	}
	urlCh := make(chan string, 1)
	metricsReady = func(url string) { urlCh <- url }
	defer func() { metricsReady = nil }()

	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		errCh <- run([]string{
			"-n", "3", "-g", "1", "-seed", "9", "-metrics", "127.0.0.1:0",
			"-coordinate", "-trace", "infocom", "-from", "32400", "-horizon", "1800",
			"-msgs", "4", "-relays", "1", "-copies", "2", "-join-wait", "30s",
		}, &out, func(addr string) { addrCh <- addr })
	}()
	var scrapeURL, dirAddr string
	select {
	case scrapeURL = <-urlCh:
	case err := <-errCh:
		t.Fatalf("dtndir exited early: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("metrics endpoint never came up")
	}
	select {
	case dirAddr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("directory never started serving")
	}

	daemons := make([]*cluster.Daemon, 3)
	for id := 0; id < 3; id++ {
		d, err := cluster.StartDaemon(cluster.DaemonConfig{ID: id, DirAddr: dirAddr})
		if err != nil {
			t.Fatalf("daemon %d: %v", id, err)
		}
		daemons[id] = d
		defer d.Kill()
	}

	// All three registrations flow through the directory's collector.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(scrapeURL)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		exp, err := obs.ParseExposition(body)
		if err != nil {
			t.Fatalf("scrape is not valid exposition: %v", err)
		}
		if v, ok := exp.Value("dtn_cluster_registrations_total"); ok && v >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("registrations never reached 3 in scrape:\n%s", body)
		}
		time.Sleep(50 * time.Millisecond)
	}

	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("dtndir failed: %v\n%s", err, out.String())
		}
	case <-time.After(90 * time.Second):
		t.Fatal("coordinated replay did not finish")
	}
	if _, err := http.Get(scrapeURL); err == nil {
		t.Fatal("metrics endpoint still serving after dtndir exited")
	}
}
