package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReportGeneratesMarkdown(t *testing.T) {
	if testing.Short() {
		t.Skip("generates all figures")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "EXPERIMENTS.md")
	err := run([]string{
		"-out", out,
		"-runs", "40", "-security-runs", "200", "-trace-runs", "10",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	md := string(data)
	for _, want := range []string{
		"# EXPERIMENTS",
		"Claim check summary:",
		"### FIG04", "### FIG11", "### FIG17", "### FIG19",
		"### ABLATION-TPS",
		"| Paper claim | Result | Measured |",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(md, claimSummaryPlaceholder) {
		t.Error("summary placeholder not replaced")
	}
}

func TestReportBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("accepted unknown flag")
	}
}

func TestMdEscape(t *testing.T) {
	if got := mdEscape("a|b\nc"); got != "a\\|b c" {
		t.Fatalf("got %q", got)
	}
}
