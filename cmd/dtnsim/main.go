// Command dtnsim runs one onion-routing scenario on a random contact
// graph and reports delivery, cost, and security metrics side by side
// with the paper's analytical models. Non-anonymous baselines
// (epidemic, spray-and-wait, direct) are available for comparison.
//
// Usage:
//
//	dtnsim -n 100 -g 5 -k 3 -l 3 -deadline 600 -compromised 0.1
//	dtnsim -protocol epidemic -deadline 600
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/contact"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dtnsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dtnsim", flag.ContinueOnError)
	var (
		protocol    = fs.String("protocol", "onion", "onion | runtime | epidemic | sprayandwait | binaryspray | prophet | direct")
		n           = fs.Int("n", 100, "number of nodes")
		g           = fs.Int("g", 5, "onion group size")
		k           = fs.Int("k", 3, "number of onion groups (K)")
		l           = fs.Int("l", 1, "number of message copies (L)")
		spray       = fs.Bool("spray", true, "enable source spray-and-wait augmentation (L >= 2)")
		deadline    = fs.Float64("deadline", 600, "message deadline T, minutes")
		runs        = fs.Int("runs", 500, "number of routed messages")
		seed        = fs.Uint64("seed", 1, "root random seed")
		compromised = fs.Float64("compromised", 0.1, "compromised node fraction c/n")
		faults      = fs.Float64("faults", 0, "fault-injection rate in [0,1): contact loss for simulations, uniform fault mix for the runtime")
		graphPath   = fs.String("graph", "", "load the contact graph from a file (contact exchange format)")
		saveGraph   = fs.String("save-graph", "", "save the generated contact graph to a file")
		tracePath   = fs.String("trace", "", "replay a contact trace file instead of a synthetic graph (onion protocol only; deadline in seconds)")
	)
	// -trace already means contact-trace replay here, so the runtime
	// execution-trace profile is spelled -exectrace.
	rf := obs.AddRunFlagsNamed(fs, "exectrace")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *faults < 0 || *faults >= 1 {
		return fmt.Errorf("-faults must be in [0,1), got %v", *faults)
	}
	if *runs < 1 {
		return fmt.Errorf("-runs must be positive, got %d", *runs)
	}
	obsRun, err := rf.Begin("dtnsim", args)
	if err != nil {
		return err
	}
	defer obsRun.Abort()

	endPhase := obs.Current().StartPhase(*protocol)
	switch {
	case *tracePath != "":
		if *protocol != "onion" {
			return fmt.Errorf("trace replay supports only the onion protocol")
		}
		err = runTrace(out, *tracePath, *g, *k, *l, *spray, *deadline, *runs, *seed, *faults)
	case *protocol == "onion":
		err = runOnion(out, *n, *g, *k, *l, *spray, *deadline, *runs, *seed, *compromised, *faults, *graphPath, *saveGraph)
	case *protocol == "runtime":
		err = runRuntime(out, *n, *g, *k, *l, *spray, *deadline, *runs, *seed, *faults)
	case *protocol == "epidemic", *protocol == "sprayandwait", *protocol == "binaryspray",
		*protocol == "prophet", *protocol == "direct":
		err = runBaseline(out, *protocol, *n, *l, *deadline, *runs, *seed, *faults)
	default:
		return fmt.Errorf("unknown protocol %q", *protocol)
	}
	endPhase()
	if err != nil {
		return err
	}
	type manifestConfig struct {
		Protocol    string  `json:"protocol"`
		Nodes       int     `json:"nodes"`
		GroupSize   int     `json:"groupSize"`
		Relays      int     `json:"relays"`
		Copies      int     `json:"copies"`
		Spray       bool    `json:"spray"`
		Deadline    float64 `json:"deadline"`
		Runs        int     `json:"runs"`
		Compromised float64 `json:"compromised"`
		Trace       string  `json:"trace,omitempty"`
	}
	return obsRun.Finish(manifestConfig{
		Protocol: *protocol, Nodes: *n, GroupSize: *g, Relays: *k, Copies: *l,
		Spray: *spray, Deadline: *deadline, Runs: *runs, Compromised: *compromised,
		Trace: *tracePath,
	}, *seed, 1, *faults)
}

func runOnion(out io.Writer, n, g, k, l int, spray bool, deadline float64, runs int, seed uint64, frac, faults float64, graphPath, saveGraph string) error {
	cfg := core.Config{
		Nodes: n, GroupSize: g, Relays: k, Copies: l, Spray: spray,
		MinICT: 1, MaxICT: 360, Seed: seed, ContactFailure: faults,
	}
	var nw *core.Network
	var err error
	if graphPath != "" {
		f, err := os.Open(graphPath)
		if err != nil {
			return fmt.Errorf("open graph: %w", err)
		}
		loaded, perr := contact.ReadGraph(f)
		if cerr := f.Close(); cerr != nil && perr == nil {
			perr = cerr
		}
		if perr != nil {
			return perr
		}
		cfg.Nodes = loaded.N()
		nw, err = core.NewNetworkWithGraph(cfg, loaded)
		if err != nil {
			return err
		}
	} else {
		nw, err = core.NewNetwork(cfg)
		if err != nil {
			return err
		}
	}
	if saveGraph != "" {
		f, err := os.Create(saveGraph)
		if err != nil {
			return fmt.Errorf("create graph file: %w", err)
		}
		if _, err := nw.Graph().WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	var delivered int
	var delay, tx, modelDelivery stats.Accumulator
	var simTrace, simAnon stats.Accumulator
	for i := 0; i < runs; i++ {
		trial, err := nw.NewTrial(i)
		if err != nil {
			return err
		}
		res, err := nw.Route(trial, deadline, true, i)
		if err != nil {
			return err
		}
		if res.Delivered {
			delivered++
			delay.Add(res.Time)
		}
		tx.Add(float64(res.Transmissions))
		// Thinned model: identical to ModelDelivery when faults == 0.
		m, err := nw.ModelDeliveryLossy(trial, deadline)
		if err != nil {
			return err
		}
		modelDelivery.Add(m)
		if sec, ok, err := nw.SecurityFromResult(res, frac, i); err != nil {
			return err
		} else if ok {
			simTrace.Add(sec.TraceableRate)
			simAnon.Add(sec.PathAnonymity)
		}
	}

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "scenario\tn=%d g=%d K=%d L=%d spray=%v T=%v min c/n=%.0f%% faults=%v\n",
		n, g, k, l, spray, deadline, frac*100, faults)
	fmt.Fprintf(tw, "metric\tsimulation\tanalysis\n")
	fmt.Fprintf(tw, "delivery rate\t%.4f\t%.4f\n", float64(delivered)/float64(runs), modelDelivery.Mean())
	if delivered > 0 {
		fmt.Fprintf(tw, "mean delay (min)\t%.1f\t-\n", delay.Mean())
	}
	fmt.Fprintf(tw, "transmissions\t%.2f\t<= %d\n", tx.Mean(), model.CostMultiCopyBound(k, l))
	// Security trials only yield samples when a message was actually
	// routed past the adversary, so these accumulators can be empty.
	if simTrace.N() > 0 {
		fmt.Fprintf(tw, "traceable rate\t%.4f\t%.4f\n", simTrace.Mean(), nw.ModelTraceableRate(frac))
		fmt.Fprintf(tw, "path anonymity\t%.4f\t%.4f\n", simAnon.Mean(), nw.ModelPathAnonymity(frac))
	} else {
		fmt.Fprintf(tw, "traceable rate\tn/a\t%.4f\n", nw.ModelTraceableRate(frac))
		fmt.Fprintf(tw, "path anonymity\tn/a\t%.4f\n", nw.ModelPathAnonymity(frac))
	}
	return tw.Flush()
}

func runBaseline(out io.Writer, name string, n, l int, deadline float64, runs int, seed uint64, faults float64) error {
	root := rng.New(seed)
	g := contactGraph(n, root)
	var delivered int
	var delay, tx stats.Accumulator
	for i := 0; i < runs; i++ {
		s := root.SplitN("run", i)
		src := s.IntN(n)
		dst := s.PickOther(n, src)
		var (
			proto sim.Protocol
			res   func() routing.BaselineResult
		)
		switch name {
		case "epidemic":
			p, err := routing.NewEpidemic(nodeID(src), nodeID(dst), 0)
			if err != nil {
				return err
			}
			proto, res = p, p.Result
		case "sprayandwait":
			p, err := routing.NewSprayAndWait(nodeID(src), nodeID(dst), l, 0)
			if err != nil {
				return err
			}
			proto, res = p, p.Result
		case "binaryspray":
			p, err := routing.NewBinarySprayAndWait(nodeID(src), nodeID(dst), l, 0)
			if err != nil {
				return err
			}
			proto, res = p, p.Result
		case "prophet":
			p, err := routing.NewProphet(n, nodeID(src), nodeID(dst), 0, routing.ProphetConfig{})
			if err != nil {
				return err
			}
			proto, res = p, p.Result
		case "direct":
			p, err := routing.NewDirect(nodeID(src), nodeID(dst), 0)
			if err != nil {
				return err
			}
			proto, res = p, p.Result
		}
		sim.RunSynthetic(g, deadline, s.Split("contacts"),
			sim.Lossy(proto, faults, s.Split("faults")))
		r := res()
		if r.Delivered {
			delivered++
			delay.Add(r.Time)
		}
		tx.Add(float64(r.Transmissions))
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "protocol\t%s (non-anonymous baseline)\n", name)
	fmt.Fprintf(tw, "delivery rate\t%.4f\n", float64(delivered)/float64(runs))
	if delivered > 0 {
		fmt.Fprintf(tw, "mean delay (min)\t%.1f\n", delay.Mean())
	}
	fmt.Fprintf(tw, "transmissions\t%.2f\n", tx.Mean())
	return tw.Flush()
}

func contactGraph(n int, root *rng.Stream) *contact.Graph {
	return contact.NewRandom(n, 1, 360, root.Split("graph"))
}

func nodeID(v int) contact.NodeID { return contact.NodeID(v) }

// runTrace replays a contact trace file (deadline interpreted in
// seconds, as in the paper's trace figures).
func runTrace(out io.Writer, path string, g, k, l int, spray bool, deadline float64, runs int, seed uint64, faults float64) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open trace: %w", err)
	}
	tr, perr := trace.ParseReader(f)
	if cerr := f.Close(); cerr != nil && perr == nil {
		perr = cerr
	}
	if perr != nil {
		return perr
	}
	tn, err := core.NewTraceNetwork(tr, seed)
	if err != nil {
		return err
	}
	var delivered int
	var delay, tx stats.Accumulator
	var modelAcc stats.Accumulator
	modelled := 0
	for i := 0; i < runs; i++ {
		trial, err := tn.NewTrial(i, g, k)
		if err != nil {
			return err
		}
		res, err := tn.RouteLossy(trial, deadline, l, spray, true, faults, i)
		if err != nil {
			return err
		}
		if res.Delivered {
			delivered++
			delay.Add(res.Time - trial.Start)
		}
		tx.Add(float64(res.Transmissions))
		if m, ok, err := tn.ModelDelivery(trial, deadline, l); err != nil {
			return err
		} else if ok {
			modelAcc.Add(m)
			modelled++
		}
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "trace\t%s (%d nodes, %d contacts)\n", path, tr.NodeCount, len(tr.Contacts))
	fmt.Fprintf(tw, "scenario\tg=%d K=%d L=%d spray=%v T=%v s\n", g, k, l, spray, deadline)
	if modelled > 0 {
		fmt.Fprintf(tw, "delivery rate\t%.4f (analysis %.4f over %d/%d fitted trials)\n",
			float64(delivered)/float64(runs), modelAcc.Mean(), modelled, runs)
	} else {
		fmt.Fprintf(tw, "delivery rate\t%.4f (analysis n/a, 0/%d fitted trials)\n",
			float64(delivered)/float64(runs), runs)
	}
	if delivered > 0 {
		fmt.Fprintf(tw, "mean delay (s)\t%.0f\n", delay.Mean())
	}
	fmt.Fprintf(tw, "transmissions\t%.2f\n", tx.Mean())
	return tw.Flush()
}

// runRuntime offers a Poisson stream of fully encrypted messages to
// the message-level runtime (internal/node) — the system-test view.
func runRuntime(out io.Writer, n, g, k, l int, spray bool, deadline float64, runs int, seed uint64, faults float64) error {
	nw, err := node.NewNetwork(node.Config{
		Nodes: n, GroupSize: g, Seed: seed, Spray: spray, AntiPackets: true,
		Faults: fault.Uniform(faults),
	})
	if err != nil {
		return err
	}
	graph := contactGraph(n, rng.New(seed))
	res, err := workload.Run(nw, graph, workload.Spec{
		Messages:     runs,
		ArrivalRate:  1,
		PayloadSize:  256,
		Relays:       k,
		Copies:       l,
		PadTo:        2048,
		ExpiryAfter:  deadline,
		Seed:         seed,
		TrackBuffers: true,
	}, float64(runs)+2*deadline)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "runtime\t%d nodes, real AES-GCM onions, anti-packets on\n", n)
	fmt.Fprintf(tw, "offered\t%d messages (Poisson, 1/min), K=%d L=%d spray=%v, T=%v min\n",
		runs, k, l, spray, deadline)
	fmt.Fprintf(tw, "delivery rate\t%.4f\n", res.DeliveryRate)
	if res.Delivered > 0 {
		fmt.Fprintf(tw, "mean delay (min)\t%.1f\n", res.Delay.Mean)
	}
	fmt.Fprintf(tw, "peak buffered onions\t%d\n", res.PeakBuffered)
	fmt.Fprintf(tw, "hand-offs\t%d (rejected %d, refused %d, purged %d, expired %d)\n",
		res.Totals.Forwarded, res.Totals.Rejected, res.Totals.Refused,
		res.Totals.Purged, res.Totals.Expired)
	if faults > 0 {
		fmt.Fprintf(tw, "injected faults\t%d truncated (%d retransmits), %d corrupted, %d duplicates, %d crashes (%d custody dropped)\n",
			res.Totals.Truncated, res.Totals.Retried, res.Totals.Corrupted,
			res.Totals.Duplicates, res.Totals.Crashes, res.Totals.CrashDropped)
	}
	return tw.Flush()
}
