// Command dtnsim runs one onion-routing scenario on a random contact
// graph and reports delivery, cost, and security metrics side by side
// with the paper's analytical models. Non-anonymous baselines
// (epidemic, spray-and-wait, direct) are available for comparison.
//
// Usage:
//
//	dtnsim -n 100 -g 5 -k 3 -l 3 -deadline 600 -compromised 0.1
//	dtnsim -protocol epidemic -deadline 600
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/internal/atomicio"
	"repro/internal/checkpoint"
	"repro/internal/contact"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// defaultFleetID names this process's cache shard and leases:
// hostname-pid, unique per live process on a shared directory.
func defaultFleetID() string {
	host, err := os.Hostname()
	if err != nil {
		host = "host"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dtnsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dtnsim", flag.ContinueOnError)
	var (
		protocol    = fs.String("protocol", "onion", "onion | runtime | epidemic | sprayandwait | binaryspray | prophet | direct")
		n           = fs.Int("n", 100, "number of nodes")
		g           = fs.Int("g", 5, "onion group size")
		k           = fs.Int("k", 3, "number of onion groups (K)")
		l           = fs.Int("l", 1, "number of message copies (L)")
		spray       = fs.Bool("spray", true, "enable source spray-and-wait augmentation (L >= 2)")
		deadline    = fs.Float64("deadline", 600, "message deadline T, minutes")
		runs        = fs.Int("runs", 500, "number of routed messages")
		seed        = fs.Uint64("seed", 1, "root random seed")
		compromised = fs.Float64("compromised", 0.1, "compromised node fraction c/n")
		faults      = fs.Float64("faults", 0, "fault-injection rate in [0,1): contact loss for simulations, uniform fault mix for the runtime")
		graphPath   = fs.String("graph", "", "load the contact graph from a file (contact exchange format)")
		saveGraph   = fs.String("save-graph", "", "save the generated contact graph to a file")
		tracePath   = fs.String("trace", "", "replay a contact trace file instead of a synthetic graph (onion protocol only; deadline in seconds)")
		ckptDir     = fs.String("checkpoint", "", "directory for the run's checkpoint file (onion protocol only); completed trials persist across interruptions")
		resume      = fs.Bool("resume", false, "load completed trials from -checkpoint and run only the remainder")
		trialTO     = fs.Duration("trial-timeout", 0, "per-trial watchdog: a trial exceeding this is retried once, then quarantined (0 = no watchdog)")
		cacheDir    = fs.String("cache", "", "content-addressed result cache directory (onion protocol only); identical runs reuse trials across commits, and concurrent processes form a work-stealing fleet")
		leaseTTL    = fs.Duration("lease-ttl", 30*time.Second, "fleet lease staleness bound: a chunk whose holder has not heartbeat within this is stolen")
		fleetID     = fs.String("fleet-id", defaultFleetID(), "worker name for cache shards and leases (default hostname-pid)")
	)
	// -trace already means contact-trace replay here, so the runtime
	// execution-trace profile is spelled -exectrace.
	rf := obs.AddRunFlagsNamed(fs, "exectrace")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *faults < 0 || *faults >= 1 {
		return fmt.Errorf("-faults must be in [0,1), got %v", *faults)
	}
	if *runs < 1 {
		return fmt.Errorf("-runs must be positive, got %d", *runs)
	}
	// Persistence flags fail at validation time, before any simulation
	// state is built: a -resume with no checkpoint, both persistence
	// modes at once, or a directory path occupied by a regular file.
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint DIR")
	}
	if *ckptDir != "" && *cacheDir != "" {
		return fmt.Errorf("-checkpoint and -cache are mutually exclusive (the cache already persists and resumes trials)")
	}
	if *ckptDir != "" && (*protocol != "onion" || *tracePath != "") {
		return fmt.Errorf("-checkpoint supports only the synthetic-graph onion protocol")
	}
	if *cacheDir != "" && (*protocol != "onion" || *tracePath != "") {
		return fmt.Errorf("-cache supports only the synthetic-graph onion protocol")
	}
	if *ckptDir != "" {
		if err := atomicio.EnsureDir(*ckptDir); err != nil {
			return fmt.Errorf("-checkpoint: %w", err)
		}
	}
	if *cacheDir != "" {
		if err := atomicio.EnsureDir(*cacheDir); err != nil {
			return fmt.Errorf("-cache: %w", err)
		}
	}
	if *leaseTTL <= 0 {
		return fmt.Errorf("-lease-ttl must be positive, got %v", *leaseTTL)
	}
	obsRun, err := rf.Begin("dtnsim", args)
	if err != nil {
		return err
	}
	defer obsRun.Abort()

	// SIGINT/SIGTERM drain the supervised trial loop (flushing the
	// checkpoint) instead of losing the run.
	sup := runner.NewSupervisor(*trialTO)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sigDone := make(chan struct{})
	go func() {
		select {
		case s := <-sigc:
			fmt.Fprintf(os.Stderr, "dtnsim: received %v, draining (completed trials are checkpointed)\n", s)
			obsRun.RecordEvent(obs.RunEvent{Kind: obs.EventInterrupted, Detail: s.String()})
			sup.Stop()
		case <-sigDone:
		}
	}()
	defer func() {
		signal.Stop(sigc)
		close(sigDone)
	}()

	endPhase := obs.Current().StartPhase(*protocol)
	switch {
	case *tracePath != "":
		if *protocol != "onion" {
			return fmt.Errorf("trace replay supports only the onion protocol")
		}
		err = runTrace(out, *tracePath, *g, *k, *l, *spray, *deadline, *runs, *seed, *faults)
	case *protocol == "onion":
		oc := onionConfig{
			n: *n, g: *g, k: *k, l: *l, spray: *spray, deadline: *deadline,
			runs: *runs, seed: *seed, frac: *compromised, faults: *faults,
			graphPath: *graphPath, saveGraph: *saveGraph,
			ckptDir: *ckptDir, resume: *resume,
			cacheDir: *cacheDir, leaseTTL: *leaseTTL, fleetID: *fleetID,
		}
		err = runOnion(out, oc, sup, obsRun)
	case *protocol == "runtime":
		err = runRuntime(out, *n, *g, *k, *l, *spray, *deadline, *runs, *seed, *faults)
	case *protocol == "epidemic", *protocol == "sprayandwait", *protocol == "binaryspray",
		*protocol == "prophet", *protocol == "direct":
		err = runBaseline(out, *protocol, *n, *l, *deadline, *runs, *seed, *faults)
	default:
		return fmt.Errorf("unknown protocol %q", *protocol)
	}
	endPhase()
	for _, te := range sup.Quarantined() {
		obsRun.RecordEvent(obs.RunEvent{
			Kind: obs.EventTrialQuarantined, Detail: te.Error(), Batch: te.Batch, Trial: te.Trial,
		})
	}
	if err != nil {
		if errors.Is(err, runner.ErrInterrupted) && *ckptDir != "" {
			return fmt.Errorf("%w; rerun with -resume to continue", err)
		}
		if errors.Is(err, runner.ErrInterrupted) && *cacheDir != "" {
			return fmt.Errorf("%w; rerun with the same -cache to continue", err)
		}
		return err
	}
	type manifestConfig struct {
		Protocol    string  `json:"protocol"`
		Nodes       int     `json:"nodes"`
		GroupSize   int     `json:"groupSize"`
		Relays      int     `json:"relays"`
		Copies      int     `json:"copies"`
		Spray       bool    `json:"spray"`
		Deadline    float64 `json:"deadline"`
		Runs        int     `json:"runs"`
		Compromised float64 `json:"compromised"`
		Trace       string  `json:"trace,omitempty"`
		Cache       string  `json:"cache,omitempty"`
		FleetID     string  `json:"fleetId,omitempty"`
	}
	mc := manifestConfig{
		Protocol: *protocol, Nodes: *n, GroupSize: *g, Relays: *k, Copies: *l,
		Spray: *spray, Deadline: *deadline, Runs: *runs, Compromised: *compromised,
		Trace: *tracePath, Cache: *cacheDir,
	}
	if *cacheDir != "" {
		mc.FleetID = *fleetID
	}
	return obsRun.Finish(mc, *seed, 1, *faults)
}

// onionConfig carries runOnion's scenario parameters; the checkpoint
// key hashes every field that changes trial outcomes.
type onionConfig struct {
	n, g, k, l           int
	spray                bool
	deadline             float64
	runs                 int
	seed                 uint64
	frac, faults         float64
	graphPath, saveGraph string
	graphSum             string // hex sha256 of the loaded graph file's bytes ("" when synthetic)
	ckptDir              string
	resume               bool
	cacheDir             string
	leaseTTL             time.Duration
	fleetID              string
}

// digest hashes every outcome-affecting parameter of the onion run:
// the scalar flags, the seed (seeds drive every trial, and the cache
// entry directory is this digest — compare scenario.ContentKey, which
// also embeds Seed), and the sha256 of the loaded graph file's bytes
// rather than its path, so regenerating or editing the file at the
// same path changes the key instead of silently serving stale cached
// trials. Unlike the figure engine there is no scenario spec to hash,
// so the parameters go into the digest directly.
func (c onionConfig) digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "dtnsim/onion|n=%d|g=%d|K=%d|L=%d|spray=%v|T=%v|runs=%d|seed=%d|frac=%v|faults=%v|graphsha=%s",
		c.n, c.g, c.k, c.l, c.spray, c.deadline, c.runs, c.seed, c.frac, c.faults, c.graphSum)
	return hex.EncodeToString(h.Sum(nil))
}

// key derives the per-run checkpoint identity: digest plus the git
// revision, so checkpoints never survive a commit.
func (c onionConfig) key() checkpoint.Key {
	return checkpoint.Key{
		GitRevision: obs.GitRevision(),
		SpecHash:    c.digest(),
		Seed:        c.seed,
	}
}

// contentKey derives the content-addressed cache identity: the same
// digest without the revision, so unchanged runs reuse cached trials
// across commits.
func (c onionConfig) contentKey() string { return c.digest() }

// onionTrial is one routed message's outcome; gob-encoded into the
// checkpoint, so every field is exported.
type onionTrial struct {
	Delivered       bool
	Time            float64
	Tx              float64
	Model           float64
	SecOK           bool
	Traceable, Anon float64
}

func runOnion(out io.Writer, c onionConfig, sup *runner.Supervisor, obsRun *obs.Run) error {
	cfg := core.Config{
		Nodes: c.n, GroupSize: c.g, Relays: c.k, Copies: c.l, Spray: c.spray,
		MinICT: 1, MaxICT: 360, Seed: c.seed, ContactFailure: c.faults,
	}
	var nw *core.Network
	var err error
	if c.graphPath != "" {
		raw, err := os.ReadFile(c.graphPath)
		if err != nil {
			return fmt.Errorf("open graph: %w", err)
		}
		// The graph determines the topology and with it every trial
		// outcome, so the persistence keys must track the file's
		// contents, not its path. Set graphSum before any digest()
		// caller below (checkpoint key, cache content key).
		sum := sha256.Sum256(raw)
		c.graphSum = hex.EncodeToString(sum[:])
		loaded, err := contact.ReadGraph(bytes.NewReader(raw))
		if err != nil {
			return err
		}
		cfg.Nodes = loaded.N()
		nw, err = core.NewNetworkWithGraph(cfg, loaded)
		if err != nil {
			return err
		}
	} else {
		nw, err = core.NewNetwork(cfg)
		if err != nil {
			return err
		}
	}
	if c.saveGraph != "" {
		err := atomicio.WriteTo(c.saveGraph, 0o644, func(w io.Writer) error {
			_, err := nw.Graph().WriteTo(w)
			return err
		})
		if err != nil {
			return fmt.Errorf("save graph: %w", err)
		}
	}

	var store runner.ResultStore
	if c.ckptDir != "" {
		// The directory itself was validated at flag-parse time.
		path := filepath.Join(c.ckptDir, "dtnsim-onion.ckpt")
		_, statErr := os.Stat(path)
		var ck *checkpoint.Store
		if c.resume && statErr == nil {
			ck, err = checkpoint.Resume(path, c.key())
			if err != nil {
				return err
			}
			if n := ck.Loaded(); n > 0 {
				fmt.Fprintf(os.Stderr, "dtnsim: resumed %d completed trials from %s\n", n, path)
				obsRun.RecordEvent(obs.RunEvent{
					Kind:   obs.EventResumed,
					Detail: fmt.Sprintf("%d trials from %s", n, path),
				})
			}
		} else {
			if c.resume {
				fmt.Fprintf(os.Stderr, "dtnsim: no checkpoint at %s, starting fresh\n", path)
			}
			ck, err = checkpoint.Create(path, c.key())
			if err != nil {
				return err
			}
		}
		defer ck.Close()
		store = ck
	}

	// One worker: trials share the network object, whose model caches
	// are not synchronized. Supervision still buys checkpointing, drain
	// on SIGINT, and panic/watchdog quarantine.
	trialFn := func(i int) (onionTrial, error) {
		trial, err := nw.NewTrial(i)
		if err != nil {
			return onionTrial{}, err
		}
		res, err := nw.Route(trial, c.deadline, true, i)
		if err != nil {
			return onionTrial{}, err
		}
		var o onionTrial
		o.Delivered = res.Delivered
		o.Time = res.Time
		o.Tx = float64(res.Transmissions)
		// Thinned model: identical to ModelDelivery when faults == 0.
		o.Model, err = nw.ModelDeliveryLossy(trial, c.deadline)
		if err != nil {
			return onionTrial{}, err
		}
		sec, ok, err := nw.SecurityFromResult(res, c.frac, i)
		if err != nil {
			return onionTrial{}, err
		}
		if ok {
			o.SecOK, o.Traceable, o.Anon = true, sec.TraceableRate, sec.PathAnonymity
		}
		return o, nil
	}
	var trials []onionTrial
	if c.cacheDir != "" {
		cs, err := resultcache.Open(c.cacheDir, c.contentKey(), "dtnsim-onion", c.seed, c.fleetID)
		if err != nil {
			return err
		}
		defer cs.Close()
		if n := cs.Loaded(); n > 0 {
			fmt.Fprintf(os.Stderr, "dtnsim: cache entry %.12s holds %d completed trials\n", c.contentKey(), n)
		}
		d := dispatch.New(cs, dispatch.Options{Owner: c.fleetID, LeaseTTL: c.leaseTTL})
		trials, err = dispatch.Run(d, sup, "dtnsim/onion", 1, c.runs, trialFn)
		if err != nil {
			return err
		}
	} else {
		trials, err = runner.Supervised(sup, store, "dtnsim/onion", 1, c.runs, trialFn)
		if err != nil {
			return err
		}
	}
	var delivered int
	var delay, tx, modelDelivery stats.Accumulator
	var simTrace, simAnon stats.Accumulator
	for _, o := range trials {
		if o.Delivered {
			delivered++
			delay.Add(o.Time)
		}
		tx.Add(o.Tx)
		modelDelivery.Add(o.Model)
		if o.SecOK {
			simTrace.Add(o.Traceable)
			simAnon.Add(o.Anon)
		}
	}

	n, g, k, l, spray, deadline, runs, frac := c.n, c.g, c.k, c.l, c.spray, c.deadline, c.runs, c.frac
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "scenario\tn=%d g=%d K=%d L=%d spray=%v T=%v min c/n=%.0f%% faults=%v\n",
		n, g, k, l, spray, deadline, frac*100, c.faults)
	fmt.Fprintf(tw, "metric\tsimulation\tanalysis\n")
	fmt.Fprintf(tw, "delivery rate\t%.4f\t%.4f\n", float64(delivered)/float64(runs), modelDelivery.Mean())
	if delivered > 0 {
		fmt.Fprintf(tw, "mean delay (min)\t%.1f\t-\n", delay.Mean())
	}
	fmt.Fprintf(tw, "transmissions\t%.2f\t<= %d\n", tx.Mean(), model.CostMultiCopyBound(k, l))
	// Security trials only yield samples when a message was actually
	// routed past the adversary, so these accumulators can be empty.
	if simTrace.N() > 0 {
		fmt.Fprintf(tw, "traceable rate\t%.4f\t%.4f\n", simTrace.Mean(), nw.ModelTraceableRate(frac))
		fmt.Fprintf(tw, "path anonymity\t%.4f\t%.4f\n", simAnon.Mean(), nw.ModelPathAnonymity(frac))
	} else {
		fmt.Fprintf(tw, "traceable rate\tn/a\t%.4f\n", nw.ModelTraceableRate(frac))
		fmt.Fprintf(tw, "path anonymity\tn/a\t%.4f\n", nw.ModelPathAnonymity(frac))
	}
	return tw.Flush()
}

func runBaseline(out io.Writer, name string, n, l int, deadline float64, runs int, seed uint64, faults float64) error {
	root := rng.New(seed)
	g := contactGraph(n, root)
	var delivered int
	var delay, tx stats.Accumulator
	for i := 0; i < runs; i++ {
		s := root.SplitN("run", i)
		src := s.IntN(n)
		dst := s.PickOther(n, src)
		var (
			proto sim.Protocol
			res   func() routing.BaselineResult
		)
		switch name {
		case "epidemic":
			p, err := routing.NewEpidemic(nodeID(src), nodeID(dst), 0)
			if err != nil {
				return err
			}
			proto, res = p, p.Result
		case "sprayandwait":
			p, err := routing.NewSprayAndWait(nodeID(src), nodeID(dst), l, 0)
			if err != nil {
				return err
			}
			proto, res = p, p.Result
		case "binaryspray":
			p, err := routing.NewBinarySprayAndWait(nodeID(src), nodeID(dst), l, 0)
			if err != nil {
				return err
			}
			proto, res = p, p.Result
		case "prophet":
			p, err := routing.NewProphet(n, nodeID(src), nodeID(dst), 0, routing.ProphetConfig{})
			if err != nil {
				return err
			}
			proto, res = p, p.Result
		case "direct":
			p, err := routing.NewDirect(nodeID(src), nodeID(dst), 0)
			if err != nil {
				return err
			}
			proto, res = p, p.Result
		}
		sim.RunSynthetic(g, deadline, s.Split("contacts"),
			sim.Lossy(proto, faults, s.Split("faults")))
		r := res()
		if r.Delivered {
			delivered++
			delay.Add(r.Time)
		}
		tx.Add(float64(r.Transmissions))
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "protocol\t%s (non-anonymous baseline)\n", name)
	fmt.Fprintf(tw, "delivery rate\t%.4f\n", float64(delivered)/float64(runs))
	if delivered > 0 {
		fmt.Fprintf(tw, "mean delay (min)\t%.1f\n", delay.Mean())
	}
	fmt.Fprintf(tw, "transmissions\t%.2f\n", tx.Mean())
	return tw.Flush()
}

func contactGraph(n int, root *rng.Stream) *contact.Graph {
	return contact.NewRandom(n, 1, 360, root.Split("graph"))
}

func nodeID(v int) contact.NodeID { return contact.NodeID(v) }

// runTrace replays a contact trace file (deadline interpreted in
// seconds, as in the paper's trace figures).
func runTrace(out io.Writer, path string, g, k, l int, spray bool, deadline float64, runs int, seed uint64, faults float64) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open trace: %w", err)
	}
	tr, perr := trace.ParseReader(f)
	if cerr := f.Close(); cerr != nil && perr == nil {
		perr = cerr
	}
	if perr != nil {
		return perr
	}
	tn, err := core.NewTraceNetwork(tr, seed)
	if err != nil {
		return err
	}
	var delivered int
	var delay, tx stats.Accumulator
	var modelAcc stats.Accumulator
	modelled := 0
	for i := 0; i < runs; i++ {
		trial, err := tn.NewTrial(i, g, k)
		if err != nil {
			return err
		}
		res, err := tn.RouteLossy(trial, deadline, l, spray, true, faults, i)
		if err != nil {
			return err
		}
		if res.Delivered {
			delivered++
			delay.Add(res.Time - trial.Start)
		}
		tx.Add(float64(res.Transmissions))
		if m, ok, err := tn.ModelDelivery(trial, deadline, l); err != nil {
			return err
		} else if ok {
			modelAcc.Add(m)
			modelled++
		}
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "trace\t%s (%d nodes, %d contacts)\n", path, tr.NodeCount, len(tr.Contacts))
	fmt.Fprintf(tw, "scenario\tg=%d K=%d L=%d spray=%v T=%v s\n", g, k, l, spray, deadline)
	if modelled > 0 {
		fmt.Fprintf(tw, "delivery rate\t%.4f (analysis %.4f over %d/%d fitted trials)\n",
			float64(delivered)/float64(runs), modelAcc.Mean(), modelled, runs)
	} else {
		fmt.Fprintf(tw, "delivery rate\t%.4f (analysis n/a, 0/%d fitted trials)\n",
			float64(delivered)/float64(runs), runs)
	}
	if delivered > 0 {
		fmt.Fprintf(tw, "mean delay (s)\t%.0f\n", delay.Mean())
	}
	fmt.Fprintf(tw, "transmissions\t%.2f\n", tx.Mean())
	return tw.Flush()
}

// runRuntime offers a Poisson stream of fully encrypted messages to
// the message-level runtime (internal/node) — the system-test view.
func runRuntime(out io.Writer, n, g, k, l int, spray bool, deadline float64, runs int, seed uint64, faults float64) error {
	nw, err := node.NewNetwork(node.Config{
		Nodes: n, GroupSize: g, Seed: seed, Spray: spray, AntiPackets: true,
		Faults: fault.Uniform(faults),
	})
	if err != nil {
		return err
	}
	graph := contactGraph(n, rng.New(seed))
	res, err := workload.Run(nw, graph, workload.Spec{
		Messages:     runs,
		ArrivalRate:  1,
		PayloadSize:  256,
		Relays:       k,
		Copies:       l,
		PadTo:        2048,
		ExpiryAfter:  deadline,
		Seed:         seed,
		TrackBuffers: true,
	}, float64(runs)+2*deadline)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "runtime\t%d nodes, real AES-GCM onions, anti-packets on\n", n)
	fmt.Fprintf(tw, "offered\t%d messages (Poisson, 1/min), K=%d L=%d spray=%v, T=%v min\n",
		runs, k, l, spray, deadline)
	fmt.Fprintf(tw, "delivery rate\t%.4f\n", res.DeliveryRate)
	if res.Delivered > 0 {
		fmt.Fprintf(tw, "mean delay (min)\t%.1f\n", res.Delay.Mean)
	}
	fmt.Fprintf(tw, "peak buffered onions\t%d\n", res.PeakBuffered)
	fmt.Fprintf(tw, "hand-offs\t%d (rejected %d, refused %d, purged %d, expired %d)\n",
		res.Totals.Forwarded, res.Totals.Rejected, res.Totals.Refused,
		res.Totals.Purged, res.Totals.Expired)
	if faults > 0 {
		fmt.Fprintf(tw, "injected faults\t%d truncated (%d retransmits), %d corrupted, %d duplicates, %d crashes (%d custody dropped)\n",
			res.Totals.Truncated, res.Totals.Retried, res.Totals.Corrupted,
			res.Totals.Duplicates, res.Totals.Crashes, res.Totals.CrashDropped)
	}
	return tw.Flush()
}
