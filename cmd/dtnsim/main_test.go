package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/trace"
)

func TestRunOnionScenario(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-n", "40", "-g", "4", "-k", "2", "-l", "2", "-runs", "50", "-deadline", "300"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"delivery rate", "transmissions", "traceable rate", "path anonymity"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBaselines(t *testing.T) {
	for _, proto := range []string{"epidemic", "sprayandwait", "binaryspray", "prophet", "direct"} {
		var buf bytes.Buffer
		if err := run([]string{"-protocol", proto, "-n", "20", "-runs", "30", "-deadline", "200"}, &buf); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if !strings.Contains(buf.String(), proto) {
			t.Fatalf("%s: output missing protocol name:\n%s", proto, buf.String())
		}
	}
}

func TestRunRejectsUnknownProtocol(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-protocol", "warpdrive"}, &buf); err == nil {
		t.Fatal("accepted unknown protocol")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Fatal("accepted unknown flag")
	}
}

func TestEpidemicDeliversMoreThanDirect(t *testing.T) {
	var epi, dir bytes.Buffer
	if err := run([]string{"-protocol", "epidemic", "-n", "30", "-runs", "100", "-deadline", "100"}, &epi); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-protocol", "direct", "-n", "30", "-runs", "100", "-deadline", "100"}, &dir); err != nil {
		t.Fatal(err)
	}
	if extractRate(t, epi.String()) < extractRate(t, dir.String()) {
		t.Fatalf("epidemic below direct:\n%s\n%s", epi.String(), dir.String())
	}
}

func extractRate(t *testing.T, out string) float64 {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "delivery rate") {
			fields := strings.Fields(line)
			var v float64
			if _, err := fmt.Sscan(fields[len(fields)-1], &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no delivery rate in output:\n%s", out)
	return 0
}

func TestGraphSaveAndLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/g.graph"
	var first bytes.Buffer
	if err := run([]string{"-n", "25", "-runs", "40", "-deadline", "400", "-save-graph", path}, &first); err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := run([]string{"-graph", path, "-runs", "40", "-deadline", "400"}, &second); err != nil {
		t.Fatal(err)
	}
	// Same graph + same seed => identical scenario output.
	if extractRate(t, first.String()) != extractRate(t, second.String()) {
		t.Fatalf("loaded graph gave a different delivery rate:\n%s\n%s", first.String(), second.String())
	}
}

func TestTraceReplayMode(t *testing.T) {
	// Generate a small trace, then replay it.
	tr, err := trace.Generate(trace.DiurnalConfig{
		Nodes: 15, Days: 2, DayStartHour: 9, DayEndHour: 17,
		SessionMinutes: 480, MeanICT: 200, ContactSeconds: 30, PairProb: 1,
	}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/t.trace"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-trace", path, "-g", "4", "-k", "2", "-runs", "30", "-deadline", "7200"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trace") || !strings.Contains(buf.String(), "delivery rate") {
		t.Fatalf("trace output:\n%s", buf.String())
	}
	// Trace mode rejects baselines.
	if err := run([]string{"-trace", path, "-protocol", "epidemic"}, &buf); err == nil {
		t.Fatal("trace replay accepted a baseline protocol")
	}
}

func TestRuntimeMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-protocol", "runtime", "-n", "25", "-runs", "15", "-l", "2", "-deadline", "400"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"runtime", "delivery rate", "peak buffered"} {
		if !strings.Contains(out, want) {
			t.Fatalf("runtime output missing %q:\n%s", want, out)
		}
	}
}

// TestOnionCheckpointResume pins dtnsim's crash-safety wiring: a run
// with -checkpoint reruns byte-identically with -resume (trials served
// from the checkpoint), -resume without -checkpoint is refused, the
// flag is rejected for protocols without a trial pool, and a foreign
// checkpoint (different parameters) is rejected loudly.
func TestOnionCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-n", "40", "-g", "4", "-k", "2", "-l", "2", "-runs", "30",
		"-deadline", "300", "-checkpoint", dir,
	}
	var first bytes.Buffer
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "dtnsim-onion.ckpt")); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}
	var resumed bytes.Buffer
	if err := run(append(args, "-resume"), &resumed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), resumed.Bytes()) {
		t.Fatalf("resumed report differs:\n%s\nvs\n%s", resumed.String(), first.String())
	}

	if err := run([]string{"-resume"}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "-checkpoint") {
		t.Fatalf("-resume without -checkpoint: err = %v, want flag error", err)
	}
	if err := run([]string{"-protocol", "epidemic", "-checkpoint", dir}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "onion") {
		t.Fatalf("-checkpoint with epidemic: err = %v, want rejection", err)
	}
	foreign := append(append([]string(nil), args...), "-resume", "-seed", "9")
	if err := run(foreign, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("foreign checkpoint: err = %v, want key mismatch", err)
	}
}

// TestOnionDigestSensitivity pins the content key's inputs: every
// outcome-affecting parameter — including the seed and the loaded
// graph's content hash — must change the digest, while bookkeeping
// fields (cache/checkpoint paths, fleet id, and notably the graph's
// *path*, whose content hash already covers it) must not.
func TestOnionDigestSensitivity(t *testing.T) {
	base := onionConfig{
		n: 40, g: 4, k: 2, l: 2, spray: true, deadline: 300,
		runs: 50, seed: 1, frac: 0.1,
	}
	affecting := map[string]func(*onionConfig){
		"n":        func(c *onionConfig) { c.n = 41 },
		"g":        func(c *onionConfig) { c.g = 5 },
		"k":        func(c *onionConfig) { c.k = 3 },
		"l":        func(c *onionConfig) { c.l = 3 },
		"spray":    func(c *onionConfig) { c.spray = false },
		"deadline": func(c *onionConfig) { c.deadline = 400 },
		"runs":     func(c *onionConfig) { c.runs = 51 },
		"seed":     func(c *onionConfig) { c.seed = 2 },
		"frac":     func(c *onionConfig) { c.frac = 0.2 },
		"faults":   func(c *onionConfig) { c.faults = 0.1 },
		"graphSum": func(c *onionConfig) { c.graphSum = "deadbeef" },
	}
	for name, mutate := range affecting {
		c := base
		mutate(&c)
		if c.digest() == base.digest() {
			t.Errorf("mutating %s did not change the digest", name)
		}
	}
	c := base
	c.graphPath, c.saveGraph = "elsewhere.graph", "out.graph"
	c.ckptDir, c.cacheDir, c.fleetID = "ck", "cache", "host-1"
	c.resume = true
	if c.digest() != base.digest() {
		t.Error("bookkeeping fields changed the digest")
	}
}

// cacheEntries counts content-key directories under a cache root.
func cacheEntries(t *testing.T, dir string) int {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range des {
		if de.IsDir() {
			n++
		}
	}
	return n
}

// TestCacheDistinctSeedsDistinctEntries pins the fix for the seed/key
// collision: two -cache runs differing only in -seed must open two
// distinct cache entries. (The seed used to be omitted from the
// content key, so the second run collided with the first entry's
// directory and died with a key mismatch.)
func TestCacheDistinctSeedsDistinctEntries(t *testing.T) {
	cache := t.TempDir()
	for _, seed := range []string{"1", "2"} {
		args := []string{
			"-n", "30", "-runs", "20", "-deadline", "300",
			"-cache", cache, "-seed", seed,
		}
		if err := run(args, &bytes.Buffer{}); err != nil {
			t.Fatalf("seed %s: %v", seed, err)
		}
	}
	if n := cacheEntries(t, cache); n != 2 {
		t.Fatalf("cache holds %d entries for 2 seeds; want 2", n)
	}
}

// TestCacheGraphContentInvalidates pins the fix for path-keyed graph
// hashing: regenerating the graph file at the same path must yield a
// new cache entry, not silently serve trials computed on the old
// topology.
func TestCacheGraphContentInvalidates(t *testing.T) {
	dir := t.TempDir()
	graph := filepath.Join(dir, "g.graph")
	cache := filepath.Join(dir, "cache")
	for _, genSeed := range []string{"1", "7"} {
		gen := []string{
			"-n", "25", "-runs", "1", "-deadline", "300",
			"-seed", genSeed, "-save-graph", graph,
		}
		if err := run(gen, &bytes.Buffer{}); err != nil {
			t.Fatal(err)
		}
		use := []string{
			"-graph", graph, "-runs", "20", "-deadline", "300",
			"-cache", cache,
		}
		if err := run(use, &bytes.Buffer{}); err != nil {
			t.Fatal(err)
		}
	}
	if n := cacheEntries(t, cache); n != 2 {
		t.Fatalf("cache holds %d entries for 2 graph contents at one path; want 2", n)
	}
}
