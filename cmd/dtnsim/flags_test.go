package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPersistenceFlagValidation pins the loud flag-time failures of
// the persistence options (see cmd/figures for the same table): a
// mistyped path must fail before any simulation state is built.
func TestPersistenceFlagValidation(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{
			name:    "resume without checkpoint",
			args:    []string{"-resume"},
			wantErr: "-resume requires -checkpoint",
		},
		{
			name:    "checkpoint at a regular file",
			args:    []string{"-checkpoint", file},
			wantErr: "not a directory",
		},
		{
			name:    "cache at a regular file",
			args:    []string{"-cache", file},
			wantErr: "not a directory",
		},
		{
			name:    "checkpoint and cache together",
			args:    []string{"-checkpoint", t.TempDir(), "-cache", t.TempDir()},
			wantErr: "mutually exclusive",
		},
		{
			name:    "cache with a baseline protocol",
			args:    []string{"-protocol", "epidemic", "-cache", t.TempDir()},
			wantErr: "only the synthetic-graph onion protocol",
		},
		{
			name:    "non-positive lease ttl",
			args:    []string{"-cache", t.TempDir(), "-lease-ttl", "0s"},
			wantErr: "-lease-ttl must be positive",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v; want substring %q", err, tc.wantErr)
			}
		})
	}
}
