// Package repro reproduces "An Analysis of Onion-Based Anonymous
// Routing for Delay Tolerant Networks" (Sakai, Sun, Ku, Wu, Alanazi;
// IEEE ICDCS 2016) as a production-quality Go library.
//
// The implementation lives under internal/: the paper's analytical
// models (internal/model), the abstract onion routing protocols
// (internal/routing), the onion cryptography and group-key substrates
// (internal/onion, internal/groups), the DTN simulators and trace
// tooling (internal/sim, internal/contact, internal/trace,
// internal/des), the adversary (internal/adversary), the message-level
// node runtime (internal/node), the top-level API (internal/core), and
// the per-figure experiment harness (internal/experiment).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go regenerate every evaluation
// figure of the paper (Figs. 4-19).
package repro
